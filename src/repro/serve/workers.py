"""Supervised ``ProcessPoolExecutor`` with crash recovery.

Simulation is CPU-bound pure Python, so the daemon executes every
request on a process pool.  A worker can die mid-request — OOM-killed,
``kill -9`` in the chaos tests, a segfaulting native extension — and
``concurrent.futures`` answers *every* outstanding future of a broken
pool with :class:`BrokenProcessPool`.  The supervisor here turns that
into availability instead of an error page:

* the broken executor is discarded and a fresh one spawned (at most
  one respawn at a time — concurrent victims share the new pool);
* each affected request is retried on the new pool with bounded
  attempts and jittered exponential backoff, as long as its deadline
  has budget left;
* retry/respawn counts land in the metrics registry, so a crash-looping
  worker is visible on ``/metrics`` long before it pages anyone.

The worker entry point (:func:`execute_payload`) is a module-level
function with JSON-safe arguments, so it pickles cheaply.  Named
workloads run through :func:`repro.campaign.runner._execute_job` —
the exact cache fast path the batch campaign uses — and inline
programs read/write the same content-addressed cache, so the daemon
and overnight campaigns share one warm cache directory.
"""

from __future__ import annotations

import asyncio
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs import MetricsRegistry
from repro.obs.trace import IdSource, TraceContext, Tracer


class WorkerCrash(Exception):
    """A request ran out of retry budget against crashing workers."""


# -- worker-side execution (runs in the pool processes) ----------------

#: execution-order phase → span name for worker-side span synthesis
_PHASE_SPANS = (("cache_probe", "cache.probe"),
                ("trace_gen", "trace.gen"),
                ("simulate", "engine.simulate"))


def _synthesize_trace_spans(trace_ctx: Dict[str, Any],
                            result: Dict[str, Any],
                            kind: str) -> List[Dict[str, Any]]:
    """Build span JSON objects for one executed payload.

    The worker cannot share the daemon's tracer object, so spans cross
    the process boundary *by value*: phase durations (measured here,
    on this process's clock) become child spans of the daemon-side
    ``worker.attempt`` span named in ``trace_ctx``, stacked in
    execution order ending now.  The daemon re-emits them into its
    span sink; durations survive any inter-process clock skew.
    """
    ids = IdSource()
    now_us = int(time.time() * 1e6)
    trace_id = trace_ctx["trace_id"]
    parent = trace_ctx["parent"]
    worker = f"pid-{os.getpid()}"

    if kind == "verify":
        phases = [("verify.fuzz", result.get("wall_time_s", 0.0), {})]
    elif kind == "estimate":
        phases = [("predict.estimate",
                   result.get("predict_latency_us", 0) / 1e6,
                   {"cache_hit": result.get("cache_hit")})]
    else:
        spans_s: Dict[str, float] = result.get("spans", {})
        phases = []
        for phase, span_name in _PHASE_SPANS:
            if phase in spans_s:
                attrs: Dict[str, Any] = {}
                if phase == "cache_probe":
                    attrs["cache_hit"] = result.get("cache_hit")
                    attrs["tier"] = "content-addressed"
                if phase == "simulate":
                    attrs["engine"] = result.get("engine") \
                        or "config-default"
                    attrs["cycles"] = result.get("cycles")
                phases.append((span_name, spans_s[phase], attrs))

    total_us = int(sum(d for _, d, _ in phases) * 1e6)
    cursor = now_us - total_us
    spans: List[Dict[str, Any]] = []
    for name, duration_s, attrs in phases:
        duration_us = int(duration_s * 1e6)
        spans.append({
            "name": name, "trace_id": trace_id,
            "span_id": ids.span_id(), "parent_id": parent,
            "start_us": cursor, "end_us": cursor + duration_us,
            "component": "worker", "status": "ok",
            "attrs": {"worker": worker, **attrs},
        })
        cursor += duration_us
    return spans


def execute_payload(kind: str, payload: Dict[str, Any],
                    cache_dir: str) -> Dict[str, Any]:
    """Execute one unit of work; returns a JSON-safe result dict."""
    trace_ctx = payload.pop("_trace", None)
    if kind == "simulate":
        result = _execute_simulate(payload, cache_dir)
    elif kind == "simulate_batch":
        result = _execute_simulate_batch(payload, cache_dir)
    elif kind == "estimate":
        result = _execute_estimate(payload, cache_dir)
    elif kind == "verify":
        result = _execute_verify(payload)
    elif kind == "sleep":   # chaos/debug hook (gated by the app)
        time.sleep(float(payload.get("seconds", 0.1)))
        result = {"slept_s": payload.get("seconds", 0.1),
                  "worker": f"pid-{os.getpid()}"}
    else:
        raise ValueError(f"unknown work kind {kind!r}")
    if trace_ctx is not None:
        result["trace_spans"] = _synthesize_trace_spans(
            trace_ctx, result, kind)
    return result


def _execute_simulate(payload: Dict[str, Any],
                      cache_dir: str) -> Dict[str, Any]:
    from repro.campaign.jobs import CampaignJob
    from repro.campaign.runner import _execute_job

    if "suite" in payload:
        job = CampaignJob(suite=payload["suite"], bench=payload["bench"],
                          core=payload["core"], mode=payload["mode"],
                          scale=payload.get("scale"),
                          engine=payload.get("engine"))
        record = _execute_job(job, cache_dir, force=False)
        result = asdict(record)
        result["workload"] = f"{payload['suite']}/{payload['bench']}"
        return result
    return _execute_inline(payload, cache_dir)


def _execute_simulate_batch(payload: Dict[str, Any],
                            cache_dir: str) -> Dict[str, Any]:
    """One worker call replaying a whole sweep grid as batch lanes.

    Every job probes the shared cache exactly like the single-job
    path; the cache misses then go through the engine's registered
    ``simulate_batch`` (one columnar decode pass for all lanes) via
    :func:`repro.campaign.runner._execute_jobs`.
    """
    from repro.campaign.jobs import CampaignJob
    from repro.campaign.runner import _execute_jobs

    jobs = [CampaignJob(suite=p["suite"], bench=p["bench"],
                        core=p["core"], mode=p["mode"],
                        scale=p.get("scale"), engine=p.get("engine"))
            for p in payload["jobs"]]
    records = _execute_jobs(jobs, cache_dir, False)
    results = []
    for p, record in zip(payload["jobs"], records):
        result = asdict(record)
        result["workload"] = f"{p['suite']}/{p['bench']}"
        results.append(result)
    return {"jobs": results, "worker": f"pid-{os.getpid()}"}


def _execute_inline(payload: Dict[str, Any],
                    cache_dir: str) -> Dict[str, Any]:
    import hashlib
    import json
    from dataclasses import replace

    from repro.campaign.cache import (
        ResultCache,
        payload_to_result,
        result_key_from_fingerprint,
        result_to_payload,
        trace_fingerprint,
        trace_index_key,
    )
    from repro.core import CORES, RecycleMode
    from repro.core.cpu import simulate
    from repro.isa.serialize import program_from_dict
    from repro.pipeline.trace import generate_trace

    start = time.perf_counter()
    config = CORES[payload["core"]].with_mode(
        RecycleMode(payload["mode"]))
    if payload.get("engine"):
        config = replace(config, engine=payload["engine"])
    cache = ResultCache(Path(cache_dir))

    # the program→trace mapping is deterministic, so inline programs
    # get the same trace-fingerprint-index fast path as named jobs: a
    # fully-warm request is three small file reads, no trace generation
    digest = hashlib.sha256(json.dumps(
        payload["program"], sort_keys=True).encode()).hexdigest()
    tkey = trace_index_key("serve-inline", digest)
    result = None
    cache_hit = False
    name = payload["program"].get("name", "inline")

    spans: Dict[str, float] = {}
    probe_start = time.perf_counter()
    fingerprint = cache.get_trace_fingerprint(tkey)
    if fingerprint is not None:
        key = result_key_from_fingerprint(fingerprint, config)
        cached = cache.get(key)
        if cached is not None:
            result = payload_to_result(cached, config)
            cache_hit = True
    spans["cache_probe"] = time.perf_counter() - probe_start
    if result is None:
        gen_start = time.perf_counter()
        program = program_from_dict(payload["program"])
        name = program.name
        trace = generate_trace(program)
        fingerprint = trace_fingerprint(trace)
        cache.put_trace_fingerprint(tkey, fingerprint)
        spans["trace_gen"] = time.perf_counter() - gen_start
        probe_start = time.perf_counter()
        key = result_key_from_fingerprint(fingerprint, config)
        cached = cache.get(key)
        spans["cache_probe"] += time.perf_counter() - probe_start
        if cached is not None:
            result = payload_to_result(cached, config)
            cache_hit = True
        else:
            sim_start = time.perf_counter()
            result = simulate(trace, config)
            cache.put(key, result_to_payload(result))
            spans["simulate"] = time.perf_counter() - sim_start

    return {
        "workload": name,
        "suite": "inline", "bench": name,
        "core": payload["core"], "mode": payload["mode"],
        "key": key,
        "cycles": result.cycles,
        "committed": result.stats.committed,
        "ipc": result.ipc,
        "cache_hit": cache_hit,
        "engine": payload.get("engine"),
        "spans": {k: round(v, 6) for k, v in spans.items()},
        "wall_time_s": round(time.perf_counter() - start, 6),
        "worker": f"pid-{os.getpid()}",
    }


def _execute_estimate(payload: Dict[str, Any],
                      cache_dir: str) -> Dict[str, Any]:
    from repro.predict.service import estimate_payload

    result = estimate_payload(payload, cache_dir, allow_generate=True)
    assert result is not None    # allow_generate=True never returns None
    return result


def _execute_verify(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core import CORES
    from repro.verify.session import run_fuzz

    start = time.perf_counter()
    outcome = run_fuzz(budget=int(payload["budget"]),
                       seed=int(payload["seed"]),
                       config=CORES[payload.get("core", "small")],
                       metamorphic=bool(payload.get("metamorphic", True)),
                       engines=payload.get("engines") or None,
                       do_shrink=False)
    result = outcome.to_payload()
    result["ok"] = outcome.ok
    result["wall_time_s"] = round(time.perf_counter() - start, 6)
    result["worker"] = f"pid-{os.getpid()}"
    return result


# -- supervisor (runs in the daemon's event loop) ----------------------

class WorkerPool:
    """Crash-supervised process pool with async submission."""

    def __init__(self, workers: int, cache_dir: str, *,
                 max_retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 seed: Optional[int] = None) -> None:
        self.workers = max(1, workers)
        self.cache_dir = cache_dir
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self._rng = random.Random(seed)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._respawn_lock: Optional[asyncio.Lock] = None

    # -- lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._generation += 1
            self.metrics.gauge("serve.worker_generation") \
                .set(self._generation)
        return self._pool

    async def warm_up(self) -> List[int]:
        """Spawn the workers eagerly; returns their pids."""
        pool = self._ensure_pool()
        loop = asyncio.get_running_loop()
        futures = [loop.run_in_executor(pool, os.getpid)
                   for _ in range(self.workers)]
        await asyncio.gather(*futures)
        return self.worker_pids()

    def worker_pids(self) -> List[int]:
        """Best-effort list of live worker pids (for /v1/status and
        the chaos tests; ``_processes`` is stable across 3.9–3.13)."""
        pool = self._pool
        processes = getattr(pool, "_processes", None) or {}
        return sorted(processes.keys())

    def shutdown(self) -> None:
        if self._pool is not None:
            # cancel_futures only exists on 3.9+; everything queued is
            # ours and already resolved by the supervisor on drain
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- supervised execution ------------------------------------------

    async def run(self, kind: str, payload: Dict[str, Any], *,
                  deadline_s: Optional[float] = None,
                  trace_parent: Optional["TraceContext"] = None
                  ) -> Dict[str, Any]:
        """Execute one payload, surviving worker crashes.

        Raises :class:`WorkerCrash` after ``max_retries`` broken-pool
        failures, or :class:`asyncio.TimeoutError` when *deadline_s*
        (seconds from now) expires first.

        With a tracer and *trace_parent*, each attempt gets its own
        ``worker.attempt`` span (so a crash-then-retry shows up as two
        sibling attempts under one request) and the worker returns its
        phase spans by value; they are re-emitted here and stripped
        from the result before it can reach the response LRU.
        """
        if self._respawn_lock is None:
            self._respawn_lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        expiry = (time.monotonic() + deadline_s
                  if deadline_s is not None else None)
        last_error: Optional[BaseException] = None

        for attempt in range(self.max_retries + 1):
            pool = self._ensure_pool()
            generation = self._generation
            attempt_span = None
            work_payload = payload
            if self.tracer is not None and trace_parent is not None:
                attempt_span = self.tracer.start(
                    "worker.attempt", parent=trace_parent,
                    component="worker", kind=kind, attempt=attempt)
                work_payload = dict(payload)
                work_payload["_trace"] = {
                    "trace_id": attempt_span.ctx.trace_id,
                    "parent": attempt_span.ctx.span_id}
            future = loop.run_in_executor(
                pool, execute_payload, kind, work_payload,
                self.cache_dir)
            try:
                if expiry is None:
                    result = await future
                else:
                    remaining = expiry - time.monotonic()
                    if remaining <= 0:
                        raise asyncio.TimeoutError()
                    result = await asyncio.wait_for(
                        future, timeout=remaining)
            except BrokenProcessPool as exc:
                if attempt_span is not None:
                    attempt_span.end(status="worker-crash")
                last_error = exc
                self.metrics.counter("serve.worker_crashes").inc()
                await self._respawn(generation)
                if attempt < self.max_retries:
                    self.metrics.counter("serve.worker_retries").inc()
                    await asyncio.sleep(self._backoff(attempt, expiry))
                continue
            except asyncio.TimeoutError:
                if attempt_span is not None:
                    attempt_span.end(status="timeout")
                raise
            worker_spans = result.pop("trace_spans", None)
            if attempt_span is not None:
                if worker_spans:
                    self.tracer.record_json(worker_spans)
                attempt_span.set(worker=result.get("worker")).end()
            return result
        raise WorkerCrash(
            f"work unit failed after {self.max_retries + 1} attempts "
            f"on crashing workers") from last_error

    def _backoff(self, attempt: int,
                 expiry: Optional[float]) -> float:
        """Jittered exponential backoff, clipped to the deadline."""
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** attempt))
        delay = base * (0.5 + self._rng.random())
        if expiry is not None:
            delay = min(delay, max(0.0, expiry - time.monotonic()))
        return delay

    async def _respawn(self, broken_generation: int) -> None:
        """Replace a broken executor exactly once per generation."""
        assert self._respawn_lock is not None
        async with self._respawn_lock:
            if self._generation != broken_generation:
                return          # another victim already respawned it
            broken, self._pool = self._pool, None
            if broken is not None:
                # a broken pool's shutdown is instant; don't block the
                # event loop on stuck children
                broken.shutdown(wait=False)
            self._ensure_pool()
            self.metrics.counter("serve.worker_respawns").inc()
