"""Delta-debugging shrinker: failing ProgramSpec → minimal reproducer.

Shrinking operates on the **descriptor tree** (dict form of a
:class:`~repro.verify.generator.ProgramSpec`), never on assembled
instructions: any subset of descriptors re-materialises into a
structurally valid program (labels, counters and HALT are synthesised
by :func:`~repro.verify.generator.materialize`), so the shrinker needs
no knowledge of branch targets.

Passes, repeated to fixpoint under an evaluation budget:

* **removal** — greedy ddmin-style chunk deletion over every body list
  (top level and each loop/skip body), deepest lists first;
* **unwrap** — replace a loop/skip wrapper by its body, and collapse
  inner loop trip counts to 1;
* **simplify** — outer trip count → 1, clear register/pool
  initialisation, drop per-op ``s`` (flag-setting) and flexible-shift
  decorations.

Every candidate is accepted only if the caller's *is_failing* predicate
still holds, so the reproducer provably preserves the original failure.
A predicate that raises (e.g. a candidate that cannot materialise) is
treated as "does not fail".
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .generator import ProgramSpec, materialize

Predicate = Callable[[ProgramSpec], bool]
_Path = Tuple[int, ...]


@dataclass
class ShrinkResult:
    """The minimised spec plus bookkeeping for reports."""

    spec: ProgramSpec
    evaluations: int
    #: instruction count of the materialised reproducer (None when the
    #: final spec unexpectedly fails to materialise)
    instructions: Optional[int] = None


def _get_body(d: Dict, path: _Path) -> List[Dict]:
    items = d["body"]
    for index in path:
        items = items[index]["body"]
    return items


def _body_paths(d: Dict) -> List[_Path]:
    """All body-list paths, DFS preorder (so reversed ⇒ deepest first)."""
    out: List[_Path] = [()]

    def walk(path: _Path) -> None:
        for i, item in enumerate(_get_body(d, path)):
            if item.get("kind") in ("loop", "skip"):
                nested = path + (i,)
                out.append(nested)
                walk(nested)

    walk(())
    return out


def shrink(spec: ProgramSpec, is_failing: Predicate, *,
           max_evaluations: int = 1500) -> ShrinkResult:
    """Reduce *spec* to a minimal spec still satisfying *is_failing*."""
    evals = 0

    def attempt(candidate: Dict) -> bool:
        nonlocal evals
        if evals >= max_evaluations:
            return False
        evals += 1
        try:
            return bool(is_failing(
                ProgramSpec.from_dict(copy.deepcopy(candidate))))
        except Exception:
            return False

    base = spec.to_dict()
    if not attempt(base):
        raise ValueError(
            f"spec {spec.name!r} does not satisfy the failure predicate")

    progress = True
    while progress and evals < max_evaluations:
        progress = False
        for sweep in (_removal_sweep, _unwrap_sweep, _simplify_sweep):
            base, changed = sweep(base, attempt)
            progress = progress or changed

    final = ProgramSpec.from_dict(base)
    try:
        instructions: Optional[int] = len(materialize(final).instructions)
    except Exception:
        instructions = None
    return ShrinkResult(spec=final, evaluations=evals,
                        instructions=instructions)


# ---------------------------------------------------------------------------
# passes
# ---------------------------------------------------------------------------

def _shrink_list(base: Dict, path: _Path,
                 attempt: Callable[[Dict], bool]) -> Tuple[Dict, bool]:
    """Greedy chunked deletion over one body list."""
    changed = False
    chunk = max(1, len(_get_body(base, path)) // 2)
    while chunk >= 1:
        i = 0
        while i < len(_get_body(base, path)):
            candidate = copy.deepcopy(base)
            del _get_body(candidate, path)[i:i + chunk]
            if attempt(candidate):
                base = candidate
                changed = True      # stay at i: the list shifted left
            else:
                i += chunk
        chunk //= 2
    return base, changed


def _removal_sweep(base: Dict,
                   attempt: Callable[[Dict], bool]) -> Tuple[Dict, bool]:
    changed_any = False
    dirty = True
    while dirty:
        dirty = False
        # deepest first: deleting inside a nested body never invalidates
        # outer paths; any change still restarts with fresh paths
        for path in reversed(_body_paths(base)):
            base, changed = _shrink_list(base, path, attempt)
            if changed:
                changed_any = dirty = True
                break
    return base, changed_any


def _unwrap_sweep(base: Dict,
                  attempt: Callable[[Dict], bool]) -> Tuple[Dict, bool]:
    changed_any = False
    dirty = True
    while dirty:
        dirty = False
        for path in _body_paths(base):
            for i, item in enumerate(_get_body(base, path)):
                if item.get("kind") not in ("loop", "skip"):
                    continue
                candidate = copy.deepcopy(base)
                items = _get_body(candidate, path)
                items[i:i + 1] = copy.deepcopy(item.get("body", []))
                if attempt(candidate):
                    base = candidate
                    changed_any = dirty = True
                    break
                if item.get("kind") == "loop" and item.get("iters", 1) > 1:
                    candidate = copy.deepcopy(base)
                    _get_body(candidate, path)[i]["iters"] = 1
                    if attempt(candidate):
                        base = candidate
                        changed_any = dirty = True
                        break
            if dirty:
                break
    return base, changed_any


def _simplify_sweep(base: Dict,
                    attempt: Callable[[Dict], bool]) -> Tuple[Dict, bool]:
    changed_any = False

    def try_mutation(mutate: Callable[[Dict], None]) -> None:
        nonlocal base, changed_any
        candidate = copy.deepcopy(base)
        mutate(candidate)
        if candidate != base and attempt(candidate):
            base = candidate
            changed_any = True

    try_mutation(lambda d: d.update(iters=1))
    try_mutation(lambda d: d.update(init_regs={}))
    try_mutation(lambda d: d.update(pool_words=[]))
    for token in sorted(base.get("init_regs", {})):
        try_mutation(lambda d, t=token: d["init_regs"].pop(t, None))
    for path in _body_paths(base):
        for i, item in enumerate(_get_body(base, path)):
            if item.get("s"):
                try_mutation(
                    lambda d, p=path, j=i: _get_body(d, p)[j].pop("s"))
            if item.get("shift"):
                def drop_shift(d: Dict, p: _Path = path, j: int = i) -> None:
                    op = _get_body(d, p)[j]
                    op.pop("shift", None)
                    op.pop("shift_amt", None)
                try_mutation(drop_shift)
    return base, changed_any


__all__ = ["Predicate", "ShrinkResult", "shrink"]
