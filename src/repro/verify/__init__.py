"""Differential testing and fuzzing of the ReDSOC simulator.

The verification subsystem cross-checks every layer that claims to
preserve architectural semantics — golden interpreter, trace executor,
and the timing cores in every :class:`~repro.core.config.RecycleMode` —
over deterministically generated random programs, plus metamorphic
timing relations the recycling design must satisfy.  Failures shrink to
minimal replayable reproducers under ``.redsoc-verify/``.

CLI: ``python -m repro.verify fuzz|replay|shrink|report``.
"""

from .artifacts import ArtifactStore, DEFAULT_ROOT, load_spec_file
from .defects import DEFAULT_DEFECT, DEFECTS, Defect, inject_defect
from .generator import (
    GenConfig,
    LoopSpec,
    OpSpec,
    OpcodeCoverage,
    POOL_BASE,
    POOL_WORDS,
    ProgramGenerator,
    ProgramSpec,
    SkipSpec,
    materialize,
    reachable_opcodes,
)
from .metamorphic import (
    CYCLE_SLOP,
    CYCLE_TOLERANCE,
    check_timing_relations,
    within_bound,
)
from .oracle import Divergence, ProgramVerdict, check_program
from .session import (
    Finding,
    FuzzOutcome,
    check_spec,
    run_fuzz,
    shrink_finding,
)
from .shrink import ShrinkResult, shrink

__all__ = [
    "ArtifactStore", "CYCLE_SLOP", "CYCLE_TOLERANCE", "DEFAULT_DEFECT",
    "DEFAULT_ROOT", "DEFECTS", "Defect", "Divergence", "Finding",
    "FuzzOutcome", "GenConfig", "LoopSpec", "OpSpec", "OpcodeCoverage",
    "POOL_BASE", "POOL_WORDS", "ProgramGenerator", "ProgramSpec",
    "ProgramVerdict", "ShrinkResult", "SkipSpec", "check_program",
    "check_spec", "check_timing_relations", "inject_defect",
    "load_spec_file", "materialize", "reachable_opcodes", "run_fuzz",
    "shrink",
    "shrink_finding", "within_bound",
]
