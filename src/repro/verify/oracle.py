"""Differential oracle: golden model vs trace executor vs timing cores.

One :func:`check_program` call runs a program through every layer that
claims to preserve architectural semantics and cross-checks them:

1. **golden vs trace executor** — the
   :class:`~repro.isa.interpreter.Interpreter` and
   :func:`~repro.pipeline.trace.generate_trace` are two independent
   drivers of the same instruction semantics; their final architectural
   states (``arch_state()``) and dynamic instruction counts must agree
   exactly.
2. **timing cores** — the trace is replayed through the cycle model in
   every requested :class:`~repro.core.config.RecycleMode` under the
   full :func:`~repro.core.audit.audit_run` (six timing invariants),
   and each run must commit exactly the dynamic instruction count.
   Slack recycling is timing-only: no mode may change *what* commits.
3. **metamorphic timing relations** — see :mod:`repro.verify.metamorphic`.

Everything is reported as a flat list of :class:`Divergence` records so
the fuzzer can decide what to shrink and the CLI what to print.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.audit import audit_run
from repro.core.config import CoreConfig, RecycleMode, SMALL
from repro.core.cpu import simulate
from repro.core.engine import ENGINES
from repro.isa.interpreter import run_program
from repro.isa.program import Program
from repro.pipeline.codegen import generate_trace_compiled
from repro.pipeline.trace import Trace, generate_trace

from .metamorphic import check_timing_relations


@dataclass
class Divergence:
    """One broken equivalence/invariant, with enough detail to debug."""

    check: str           # e.g. "arch.regs", "audit.dataflow", "meta.egpw"
    mode: Optional[str]  # RecycleMode value, or None for mode-free checks
    detail: str

    def __str__(self) -> str:
        where = f" [{self.mode}]" if self.mode else ""
        return f"{self.check}{where}: {self.detail}"

    def to_payload(self) -> Dict[str, Any]:
        return {"check": self.check, "mode": self.mode,
                "detail": self.detail}


@dataclass
class ProgramVerdict:
    """Outcome of the full differential check of one program."""

    name: str
    instructions: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    #: cycle counts per mode/variant label (feeds coverage + reports)
    cycles: Dict[str, int] = field(default_factory=dict)
    trace: Optional[Trace] = None

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_payload(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "instructions": self.instructions,
            "ok": self.ok,
            "divergences": [d.to_payload() for d in self.divergences],
            "cycles": dict(self.cycles),
        }


def _diff_regs(golden: Dict, other: Dict) -> str:
    """First few differing registers between two reg snapshots."""
    diffs = []
    for space in ("int", "vec"):
        for i, (a, b) in enumerate(zip(golden[space], other[space])):
            if a != b:
                diffs.append(f"{space[0]}{i}: golden={a:#x} got={b:#x}")
    if golden["flags"] != other["flags"]:
        diffs.append(f"flags: golden={golden['flags']:#x} "
                     f"got={other['flags']:#x}")
    return "; ".join(diffs[:4]) + ("..." if len(diffs) > 4 else "")


def _diff_mem(golden: Dict, other: Dict) -> str:
    """First few differing bytes between two memory snapshots."""
    addrs = sorted(set(golden) | set(other))
    diffs = [f"[{addr:#x}]: golden={golden.get(addr, 0):#04x} "
             f"got={other.get(addr, 0):#04x}"
             for addr in addrs
             if golden.get(addr, 0) != other.get(addr, 0)]
    return "; ".join(diffs[:4]) + ("..." if len(diffs) > 4 else "")


#: simulate-compatible callable the metamorphic layer uses for its
#: config variants; the CLI substitutes a campaign-cache-backed one
SimulateFn = Callable[[Trace, CoreConfig], Any]


def _diff_traces(base: Trace, other: Trace) -> str:
    """Empty string when identical, else the first entry-level diff."""
    if len(base.entries) != len(other.entries):
        return (f"length: interpreted={len(base.entries)} "
                f"compiled={len(other.entries)}")
    for i, (a, b) in enumerate(zip(base.entries, other.entries)):
        ta = (a.instr, a.pc, a.next_pc, bool(a.taken), a.op_width,
              a.mem_addr, a.mem_size, bool(a.is_store))
        tb = (b.instr, b.pc, b.next_pc, bool(b.taken), b.op_width,
              b.mem_addr, b.mem_size, bool(b.is_store))
        if ta != tb:
            return f"entry #{i}: interpreted={ta} compiled={tb}"
    if base.arch_state() != other.arch_state():
        return "final architectural state differs"
    return ""


def _diff_stats(base, other) -> str:
    """First few differing SimStats fields between two engines."""
    diffs = []
    for f in fields(base):
        a, b = getattr(base, f.name), getattr(other, f.name)
        if a != b:
            diffs.append(f"{f.name}: audit={a!r} got={b!r}")
    return "; ".join(diffs[:4]) + ("..." if len(diffs) > 4 else "")


def check_program(program: Program, *,
                  config: CoreConfig = SMALL,
                  modes: Optional[Sequence[RecycleMode]] = None,
                  metamorphic: bool = True,
                  engines: Optional[Sequence[str]] = None,
                  simulate_fn: SimulateFn = simulate) -> ProgramVerdict:
    """Run the full differential check; returns a :class:`ProgramVerdict`.

    *simulate_fn* is used for the metamorphic variant runs and must be
    call-compatible with :func:`repro.core.cpu.simulate` (pass
    a :func:`repro.campaign.cached_simulate` closure to read variant
    runs through the campaign result cache).

    *engines* names simulation backends to cross-check: each one
    re-simulates every mode and its **full SimStats record** must match
    the audited run bit for bit (engines are performance choices, never
    semantics choices).  Any drift flags an ``engine.stats`` divergence.
    """
    modes = list(modes) if modes is not None else list(RecycleMode)
    verdict = ProgramVerdict(name=program.name)
    flag = verdict.divergences.append

    # 1. golden model vs trace executor
    golden = run_program(program)
    trace = generate_trace(program)
    verdict.instructions = len(trace.entries)
    verdict.trace = trace
    golden_state = golden.arch_state()
    trace_state = trace.arch_state()
    if golden_state["regs"] != trace_state["regs"]:
        flag(Divergence("arch.regs", None,
                        _diff_regs(golden_state["regs"],
                                   trace_state["regs"])))
    if golden_state["mem"] != trace_state["mem"]:
        flag(Divergence("arch.mem", None,
                        _diff_mem(golden_state["mem"],
                                  trace_state["mem"])))
    if golden.instructions != len(trace.entries):
        flag(Divergence(
            "arch.count", None,
            f"golden retired {golden.instructions}, trace recorded "
            f"{len(trace.entries)}"))
    if not golden.halted:
        flag(Divergence("arch.halt", None,
                        "golden model hit the instruction cap"))

    # 1b. compiled trace generator vs the interpreted one: the codegen
    # path must reproduce the exact same dynamic trace, entry by entry
    if engines and "compiled" in engines:
        compiled_trace = generate_trace_compiled(program)
        mismatch = _diff_traces(trace, compiled_trace)
        if mismatch:
            flag(Divergence("engine.trace", None, mismatch))

    # 2. every timing mode: audit invariants + commit-count equality
    audits = {}
    for mode in modes:
        audit = audit_run(trace, config.with_mode(mode))
        audits[mode] = audit
        verdict.cycles[mode.value] = audit.result.stats.cycles
        committed = audit.result.stats.committed
        if committed != len(trace.entries):
            flag(Divergence(
                "commit.count", mode.value,
                f"committed {committed} of {len(trace.entries)}"))
        for violation in audit.violations:
            flag(Divergence(f"audit.{violation.rule}", mode.value,
                            f"uop#{violation.seq}: {violation.detail}"))

    # 2b. backend equivalence: each requested engine must reproduce the
    # audited run's SimStats exactly, mode by mode.  An engine with a
    # registered batch entry point replays all its mode legs in one
    # batched columnar pass — itself part of the contract under test.
    for engine in engines or ():
        configs = [replace(config.with_mode(mode), engine=engine)
                   for mode in modes]
        batch_fn = None
        if simulate_fn is simulate and len(modes) > 1 \
                and engine in ENGINES:
            batch_fn = ENGINES.batch(engine)
        if batch_fn is not None:
            runs = batch_fn([(trace, cfg) for cfg in configs])
        else:
            runs = [simulate_fn(trace, cfg) for cfg in configs]
        for mode, run in zip(modes, runs):
            verdict.cycles[f"{mode.value}:{engine}"] = run.stats.cycles
            if run.stats != audits[mode].result.stats:
                flag(Divergence(
                    "engine.stats", mode.value,
                    f"engine {engine!r} diverges from the audited run: "
                    f"{_diff_stats(audits[mode].result.stats, run.stats)}"))

    # 3. metamorphic timing relations
    if metamorphic:
        verdict.divergences.extend(check_timing_relations(
            trace, config, verdict.cycles, simulate_fn=simulate_fn))
    return verdict


__all__ = ["Divergence", "ProgramVerdict", "SimulateFn", "check_program"]
