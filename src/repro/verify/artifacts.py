"""Replayable failure artifacts under ``.redsoc-verify/``.

Every finding the fuzzer keeps is written as a self-contained directory:

::

    .redsoc-verify/
      session.json                 # seed, budget, coverage, finding index
      failures/<program-name>/
        spec.json                  # generator descriptor tree (shrinkable)
        shrunk.json                # minimised spec, when shrinking ran
        program.json               # assembled Program (generator-independent)
        report.json                # divergences + cycle counts + defect
        events.jsonl               # pipeline event trace of the REDSOC run

``spec.json``/``shrunk.json`` replay through the generator's
:func:`~repro.verify.generator.materialize`; ``program.json`` replays
through :func:`repro.isa.program_from_dict` even if the generator's
conventions change.  ``session.json`` is deterministic — it carries no
timestamps or host data — so two fuzz runs with the same seed and
budget produce byte-identical sessions (asserted by the CLI tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.config import CoreConfig, RecycleMode
from repro.core.cpu import simulate
from repro.isa.serialize import program_to_dict
from repro.obs import Recorder, write_events_jsonl

from .generator import ProgramSpec, materialize
from .oracle import ProgramVerdict
from .shrink import ShrinkResult

#: default artifact root, relative to the working directory
DEFAULT_ROOT = ".redsoc-verify"


def _dump(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


class ArtifactStore:
    """Filesystem layout manager for one fuzz/replay session."""

    def __init__(self, root: Path = Path(DEFAULT_ROOT)) -> None:
        self.root = Path(root)

    @property
    def session_path(self) -> Path:
        return self.root / "session.json"

    def failure_dir(self, name: str) -> Path:
        return self.root / "failures" / name

    # -- writing ---------------------------------------------------------

    def write_failure(self, spec: ProgramSpec, verdict: ProgramVerdict, *,
                      config: CoreConfig,
                      shrunk: Optional[ShrinkResult] = None,
                      defect: Optional[str] = None) -> Path:
        """Persist one finding; returns its directory."""
        directory = self.failure_dir(spec.name)
        _dump(directory / "spec.json", spec.to_dict())
        report: Dict[str, Any] = {
            "config": config.name,
            "defect": defect,
            "verdict": verdict.to_payload(),
        }
        replay_spec = spec
        if shrunk is not None:
            _dump(directory / "shrunk.json", shrunk.spec.to_dict())
            report["shrunk"] = {
                "evaluations": shrunk.evaluations,
                "instructions": shrunk.instructions,
            }
            replay_spec = shrunk.spec
        _dump(directory / "report.json", report)
        try:
            program = materialize(replay_spec)
        except ValueError:
            return directory
        _dump(directory / "program.json", program_to_dict(program))
        # pipeline event trace of the (shrunk) failing program under the
        # mode the paper cares about — feeds the obs/Perfetto tooling
        recorder = Recorder()
        simulate(program, config.with_mode(RecycleMode.REDSOC),
                 obs=recorder)
        write_events_jsonl(recorder.events, directory / "events.jsonl")
        return directory

    def write_session(self, payload: Dict[str, Any]) -> Path:
        _dump(self.session_path, payload)
        return self.session_path

    # -- reading ---------------------------------------------------------

    def read_session(self) -> Dict[str, Any]:
        return json.loads(self.session_path.read_text(encoding="utf-8"))

    def load_spec(self, name: str, *, shrunk: bool = True) -> ProgramSpec:
        """Load a stored failure spec (preferring the shrunk form)."""
        directory = self.failure_dir(name)
        candidates = (["shrunk.json", "spec.json"] if shrunk
                      else ["spec.json"])
        for filename in candidates:
            path = directory / filename
            if path.exists():
                return ProgramSpec.from_dict(
                    json.loads(path.read_text(encoding="utf-8")))
        raise FileNotFoundError(
            f"no spec stored under {directory}")

    def failures(self) -> Dict[str, Path]:
        """Mapping of stored failure name → directory."""
        base = self.root / "failures"
        if not base.is_dir():
            return {}
        return {p.name: p for p in sorted(base.iterdir()) if p.is_dir()}


def load_spec_file(path: Path) -> ProgramSpec:
    """Load a ProgramSpec from an explicit JSON file path."""
    return ProgramSpec.from_dict(
        json.loads(Path(path).read_text(encoding="utf-8")))


__all__ = ["ArtifactStore", "DEFAULT_ROOT", "load_spec_file"]
