"""``python -m repro.verify`` — fuzz, replay, shrink, report.

Examples::

    # deterministic 200-program differential fuzz session
    python -m repro.verify fuzz --budget 200 --seed 0

    # prove the harness catches a seeded semantics bug end to end
    python -m repro.verify fuzz --budget 50 --self-check

    # route metamorphic variant runs through the campaign result cache
    python -m repro.verify fuzz --budget 200 --cache-dir .redsoc-cache

    # re-run a stored failure (name in the store, or a spec JSON path)
    python -m repro.verify replay fuzz-0-12
    python -m repro.verify replay .redsoc-verify/failures/fuzz-0-12/shrunk.json

    # shrink a stored failure under an injected defect
    python -m repro.verify shrink fuzz-0-12 --defect eor-lsb

    # summarise the last session
    python -m repro.verify report

Exit codes follow the campaign CLI: 0 success, 1 findings/divergence,
2 usage error.  ``fuzz --self-check`` inverts the findings sense — the
injected defect *must* be caught (and shrink to a small reproducer),
otherwise the verifier itself is broken.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign import ResultCache, cached_simulate
from repro.core import ENGINES
from repro.core.config import CORES
from repro.core.cpu import simulate

from .artifacts import DEFAULT_ROOT, ArtifactStore, load_spec_file
from .defects import DEFAULT_DEFECT, DEFECTS
from .generator import ProgramSpec, materialize
from .oracle import SimulateFn
from .session import (
    DEFAULT_MAX_FAILURES,
    FuzzOutcome,
    check_spec,
    run_fuzz,
    shrink_finding,
)

#: shrunk reproducers larger than this fail ``--self-check`` — the
#: shrinker, not just the oracle, has to be working
SELF_CHECK_MAX_INSTRUCTIONS = 10


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential fuzzing of the ReDSOC simulator "
                    "against its golden model.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", choices=sorted(CORES),
                       default="small",
                       help="core preset (default: small)")
        p.add_argument("--out", type=Path, default=Path(DEFAULT_ROOT),
                       help=f"artifact root (default: {DEFAULT_ROOT})")
        p.add_argument("--no-metamorphic", action="store_true",
                       help="skip the timing-relation properties")
        p.add_argument("--cache-dir", type=Path, default=None,
                       help="route metamorphic variant simulations "
                            "through a campaign result cache")
        p.add_argument("--engines", nargs="+", metavar="ENGINE",
                       choices=list(ENGINES.names()), default=None,
                       help="cross-check these simulation backends "
                            "against the audited run on every program "
                            "and mode (full-SimStats bit-identity)")

    fuzz = sub.add_parser("fuzz", help="run a deterministic fuzz session")
    common(fuzz)
    fuzz.add_argument("--budget", type=int, default=200, metavar="N",
                      help="programs to generate (default: 200)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="session seed (default: 0)")
    fuzz.add_argument("--max-failures", type=int,
                      default=DEFAULT_MAX_FAILURES, metavar="K",
                      help="stop after K findings "
                           f"(default: {DEFAULT_MAX_FAILURES})")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="keep failing programs un-minimised")
    fuzz.add_argument("--self-check", nargs="?", const=DEFAULT_DEFECT,
                      choices=sorted(DEFECTS), metavar="DEFECT",
                      default=None,
                      help="inject a named semantics defect and require "
                           f"the fuzzer to catch it (default defect: "
                           f"{DEFAULT_DEFECT})")
    fuzz.add_argument("--quiet", "-q", action="store_true",
                      help="suppress per-program progress")
    fuzz.add_argument("--log-json", action="store_true",
                      help="structured JSON log lines on stderr, "
                           "correlated by a per-session id")

    replay = sub.add_parser(
        "replay", help="re-run a stored failure through the oracle")
    common(replay)
    replay.add_argument("target", metavar="NAME_OR_PATH",
                        help="failure name in the store, or a spec JSON "
                             "file path")
    replay.add_argument("--defect", choices=sorted(DEFECTS), default=None,
                        help="re-inject a defect while replaying")
    replay.add_argument("--full", action="store_true",
                        help="replay the original spec, not the shrunk "
                             "one")

    shr = sub.add_parser("shrink", help="minimise a stored failure")
    common(shr)
    shr.add_argument("target", metavar="NAME_OR_PATH",
                     help="failure name in the store, or a spec JSON "
                          "file path")
    shr.add_argument("--defect", choices=sorted(DEFECTS), default=None,
                     help="inject a defect while evaluating candidates")
    shr.add_argument("--max-evaluations", type=int, default=1500,
                     metavar="N",
                     help="candidate evaluation budget (default: 1500)")

    report = sub.add_parser("report",
                            help="summarise the stored session")
    report.add_argument("--out", type=Path, default=Path(DEFAULT_ROOT),
                        help=f"artifact root (default: {DEFAULT_ROOT})")
    return parser


def _simulate_fn(args: argparse.Namespace) -> SimulateFn:
    if args.cache_dir is None:
        return simulate
    cache = ResultCache(args.cache_dir)
    return lambda trace, config: cached_simulate(trace, config, cache)


def _load_target(args: argparse.Namespace, *,
                 prefer_shrunk: bool) -> ProgramSpec:
    path = Path(args.target)
    if path.is_file():
        return load_spec_file(path)
    return ArtifactStore(args.out).load_spec(args.target,
                                             shrunk=prefer_shrunk)


def _print_listing(spec: ProgramSpec) -> None:
    program = materialize(spec)
    print(f"  {len(program.instructions)} instruction(s):")
    for instr in program.instructions:
        print(f"    {instr!r}")


def _cmd_fuzz(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.out)
    logger = None
    if args.log_json:
        from repro.obs.log import stderr_logger
        from repro.obs.trace import IdSource
        session_id = IdSource(args.seed).trace_id()
        logger = stderr_logger(component="verify").bind(
            session_id=session_id, seed=args.seed,
            budget=args.budget, config=args.config)
        logger.info("fuzz.start",
                    self_check=args.self_check,
                    metamorphic=not args.no_metamorphic)

    def progress(index: int, verdict) -> None:
        if logger is not None and not verdict.ok:
            logger.warning("fuzz.finding", name=verdict.name,
                           index=index,
                           divergences=len(verdict.divergences),
                           first=str(verdict.divergences[0]))
        if not args.quiet and not verdict.ok:
            first = verdict.divergences[0]
            print(f"[FAIL] {verdict.name}: {first} "
                  f"(+{len(verdict.divergences) - 1} more)")

    outcome = run_fuzz(budget=args.budget, seed=args.seed,
                       config=CORES[args.config],
                       metamorphic=not args.no_metamorphic,
                       engines=args.engines,
                       do_shrink=not args.no_shrink,
                       defect=args.self_check,
                       max_failures=args.max_failures,
                       simulate_fn=_simulate_fn(args),
                       store=store, progress=progress)
    if logger is not None:
        logger.info("fuzz.done",
                    programs_run=outcome.programs_run,
                    findings=len(outcome.findings))
    if not args.quiet:
        print(outcome.coverage.render())
        print(f"session written to {store.session_path}")
    if args.self_check is not None:
        return _self_check_result(outcome)
    if outcome.findings:
        print(f"{len(outcome.findings)} finding(s) — artifacts under "
              f"{store.root / 'failures'}", file=sys.stderr)
        return 1
    print(f"ok: {outcome.programs_run} program(s), no divergence")
    return 0


def _self_check_result(outcome: FuzzOutcome) -> int:
    """0 iff the injected defect was caught and shrunk small enough."""
    if not outcome.findings:
        print(f"self-check FAILED: defect {outcome.defect!r} survived "
              f"{outcome.programs_run} program(s) undetected",
              file=sys.stderr)
        return 1
    sizes = [f.shrunk.instructions for f in outcome.findings
             if f.shrunk is not None and f.shrunk.instructions]
    best = min(sizes, default=None)
    if sizes and best > SELF_CHECK_MAX_INSTRUCTIONS:
        print(f"self-check FAILED: smallest reproducer has {best} "
              f"instructions (> {SELF_CHECK_MAX_INSTRUCTIONS})",
              file=sys.stderr)
        return 1
    detail = (f", smallest reproducer {best} instruction(s)"
              if best is not None else "")
    print(f"self-check ok: defect {outcome.defect!r} caught in "
          f"{len(outcome.findings)} finding(s){detail}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    spec = _load_target(args, prefer_shrunk=not args.full)
    verdict = check_spec(spec, config=CORES[args.config],
                         metamorphic=not args.no_metamorphic,
                         engines=args.engines,
                         defect=args.defect,
                         simulate_fn=_simulate_fn(args))
    print(f"{spec.name}: {verdict.instructions} dynamic instruction(s), "
          f"cycles {verdict.cycles}")
    if verdict.ok:
        print("no divergence")
        return 0
    for divergence in verdict.divergences:
        print(f"  {divergence}")
    return 1


def _cmd_shrink(args: argparse.Namespace) -> int:
    spec = _load_target(args, prefer_shrunk=False)
    verdict = check_spec(spec, config=CORES[args.config],
                         metamorphic=not args.no_metamorphic,
                         engines=args.engines,
                         defect=args.defect,
                         simulate_fn=_simulate_fn(args))
    if verdict.ok:
        print(f"{spec.name} does not fail — nothing to shrink",
              file=sys.stderr)
        return 2
    result = shrink_finding(spec, verdict, config=CORES[args.config],
                            defect=args.defect,
                            simulate_fn=_simulate_fn(args),
                            max_evaluations=args.max_evaluations)
    directory = ArtifactStore(args.out).failure_dir(spec.name)
    if directory.is_dir():
        (directory / "shrunk.json").write_text(
            json.dumps(result.spec.to_dict(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        print(f"wrote {directory / 'shrunk.json'}")
    print(f"{spec.name}: shrunk to {result.instructions} "
          f"instruction(s) in {result.evaluations} evaluation(s)")
    _print_listing(result.spec)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.out)
    if not store.session_path.is_file():
        print(f"no session at {store.session_path} "
              f"(run `python -m repro.verify fuzz` first)",
              file=sys.stderr)
        return 2
    session = store.read_session()
    coverage = session.get("coverage", {})
    total = len(coverage.get("static", {})) or 1
    covered = total - len(coverage.get("missing_static", []))
    defect = session.get("defect")
    print(f"seed {session['seed']}, budget {session['budget']}, "
          f"config {session['config']}"
          + (f", injected defect {defect!r}" if defect else ""))
    print(f"{session['programs_run']} program(s), "
          f"{coverage.get('dynamic_instructions', 0)} dynamic "
          f"instruction(s), opcode coverage {covered}/{total}")
    findings = session.get("findings", [])
    if not findings:
        print("no findings")
        return 0
    print(f"{len(findings)} finding(s):")
    for finding in findings:
        size = finding.get("shrunk_instructions")
        print(f"  {finding['name']}: {', '.join(finding['checks'])}"
              + (f" (reproducer: {size} instrs)" if size else ""))
    for name, directory in ArtifactStore(args.out).failures().items():
        print(f"  artifacts: {directory}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {"fuzz": _cmd_fuzz, "replay": _cmd_replay,
               "shrink": _cmd_shrink, "report": _cmd_report}[args.command]
    try:
        return handler(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
