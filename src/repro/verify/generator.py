"""Seeded random-program generator with per-opcode coverage accounting.

The fuzzer's front end.  Unlike the hypothesis strategy in the
integration tests (a flat loop body over ten op shapes), this generator
reaches **every opcode in the ISA** and the control/dataflow shapes that
stress the scheduler: conditional forward branches chained off real flag
producers, loop nests with dedicated counters, aliasing loads/stores
into a small shared memory pool, SIMD across all four element types,
carry chains (``ADC``/``SBC``/``RRX`` after flag-setting ops) and
flexible-operand shifts.

Programs are built as a :class:`ProgramSpec` — a tree of small
descriptors (:class:`OpSpec`, :class:`LoopSpec`, :class:`SkipSpec`) —
and only *materialised* into a real
:class:`~repro.isa.program.Program` on demand.  The descriptor tree is
what the delta-debugging shrinker edits: removing a descriptor and
re-materialising always yields a structurally valid program (labels,
counters and HALT are re-synthesised), so shrinking never has to reason
about branch targets.

Determinism: a spec is a pure function of ``(seed, index)`` (seeded
``random.Random`` over a string key, which hashes deterministically
across processes and Python versions).  Two fuzz sessions with the same
seed and budget generate byte-identical programs.

Register convention of materialised programs:

========  ====================================================
r0–r7     operand registers (the only scalar dests the body uses)
r8        BL link register
r9        scratch address register (second aliasing base)
r10       inner-loop counter
r11       outer-loop counter
r12       memory-pool base (``POOL_BASE``)
v0–v3     vector operand registers
========  ====================================================

Body descriptors never write r8–r12, so loop termination is
guaranteed by construction; every branch except the two counted
back-edges is strictly forward.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.isa.assembler import Asm
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, Opcode, ShiftOp, SimdType
from repro.isa.program import Program
from repro.isa.registers import Reg, r
from repro.isa.serialize import reg_from_str
from repro.pipeline.trace import Trace

#: base address and size (32-bit words) of the shared memory pool all
#: generated memory operations alias into
POOL_BASE = 0x1000
POOL_WORDS = 32

#: operand registers the generator draws from
_OPERAND_REGS = [f"r{i}" for i in range(8)]
_VECTOR_REGS = [f"v{i}" for i in range(4)]

_LINK_REG = r(8)
_ALIAS_BASE_REG = r(9)
_INNER_COUNTER = r(10)
_OUTER_COUNTER = r(11)
_POOL_REG = r(12)

#: values that exercise both width-slack extremes and flag corners
_INTERESTING_VALUES = (0, 1, 2, 3, 7, 0xFF, 0x100, 0xFFFF, 0x10000,
                      0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xFFFFFFFE)


# ---------------------------------------------------------------------------
# spec descriptors
# ---------------------------------------------------------------------------

@dataclass
class OpSpec:
    """One body instruction, registers spelled as strings (``"r3"``)."""

    op: str
    rd: Optional[str] = None
    rn: Optional[str] = None
    rm: Optional[str] = None
    ra: Optional[str] = None
    rs: Optional[str] = None
    imm: Optional[int] = None
    shift: Optional[str] = None
    shift_amt: int = 0
    s: bool = False
    dtype: Optional[int] = None
    scale: int = 1

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": "op", "op": self.op}
        for key in ("rd", "rn", "rm", "ra", "rs", "imm", "shift",
                    "dtype"):
            value = getattr(self, key)
            if value is not None:
                d[key] = value
        if self.shift is not None:
            d["shift_amt"] = self.shift_amt
        if self.s:
            d["s"] = True
        if self.scale != 1:
            d["scale"] = self.scale
        return d

    def regs(self) -> List[str]:
        return [t for t in (self.rd, self.rn, self.rm, self.ra, self.rs)
                if t is not None]


@dataclass
class LoopSpec:
    """A counted inner loop (``r10`` counter, backward ``bne``)."""

    iters: int
    body: List["BodyItem"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "loop", "iters": self.iters,
                "body": [item.to_dict() for item in self.body]}


@dataclass
class SkipSpec:
    """A forward branch over (or a BL landing on) the nested body.

    ``link=False``: ``b<cond> Lend`` skips the body when *cond* holds
    against the current flags.  ``link=True``: ``bl Lnext, r8`` — an
    unconditional branch-and-link to the very next instruction, so the
    body stays live and the link write is exercised.
    """

    cond: str = "al"
    link: bool = False
    body: List["BodyItem"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "skip", "cond": self.cond, "link": self.link,
                "body": [item.to_dict() for item in self.body]}


BodyItem = Union[OpSpec, LoopSpec, SkipSpec]


def item_from_dict(d: Dict[str, Any]) -> BodyItem:
    kind = d.get("kind", "op")
    if kind == "op":
        return OpSpec(**{k: val for k, val in d.items() if k != "kind"})
    body = [item_from_dict(i) for i in d.get("body", [])]
    if kind == "loop":
        return LoopSpec(iters=d["iters"], body=body)
    if kind == "skip":
        return SkipSpec(cond=d.get("cond", "al"),
                        link=d.get("link", False), body=body)
    raise ValueError(f"unknown body item kind {kind!r}")


@dataclass
class ProgramSpec:
    """A whole generated program in shrinkable descriptor form."""

    name: str
    seed: str
    iters: int = 1
    init_regs: Dict[str, int] = field(default_factory=dict)
    pool_words: List[int] = field(default_factory=list)
    body: List[BodyItem] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "iters": self.iters,
            "init_regs": dict(self.init_regs),
            "pool_words": list(self.pool_words),
            "body": [item.to_dict() for item in self.body],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ProgramSpec":
        return cls(
            name=d["name"], seed=d.get("seed", ""),
            iters=d.get("iters", 1),
            init_regs={k: int(val)
                       for k, val in d.get("init_regs", {}).items()},
            pool_words=[int(w) for w in d.get("pool_words", [])],
            body=[item_from_dict(i) for i in d.get("body", [])],
        )


# ---------------------------------------------------------------------------
# materialisation
# ---------------------------------------------------------------------------

def _walk_ops(items: Iterable[BodyItem]) -> Iterable[OpSpec]:
    for item in items:
        if isinstance(item, OpSpec):
            yield item
        else:
            yield from _walk_ops(item.body)


def materialize(spec: ProgramSpec) -> Program:
    """Build a validated :class:`Program` from *spec*.

    Prologue (register/pool initialisation), loop scaffolding, labels
    and the final HALT are synthesised here; only registers the body
    actually references are initialised, so a shrunk one-op spec
    materialises into a minimal few-instruction program.
    """
    asm = Asm(spec.name)
    used_scalar: List[str] = []
    used_vector: List[str] = []
    needs_pool = False
    needs_alias_base = False
    needs_link = False
    for op in _walk_ops(spec.body):
        for token in op.regs():
            bucket = used_vector if token.startswith("v") else used_scalar
            if token not in bucket and token in (_OPERAND_REGS
                                                 + _VECTOR_REGS):
                bucket.append(token)
        if Opcode[op.op] in (Opcode.LDR, Opcode.LDRB, Opcode.STR,
                             Opcode.STRB, Opcode.VLD1, Opcode.VST1):
            needs_pool = True
            if op.rn == "r9":
                needs_alias_base = True
    def _walk_items(items: Iterable[BodyItem]) -> Iterable[BodyItem]:
        for item in items:
            yield item
            if not isinstance(item, OpSpec):
                yield from _walk_items(item.body)

    for item in _walk_items(spec.body):
        if isinstance(item, SkipSpec) and item.link:
            needs_link = True
    if used_vector:
        needs_pool = True

    if needs_pool or spec.pool_words:
        asm.data_words(POOL_BASE, spec.pool_words or [0] * POOL_WORDS)
    if needs_pool:
        asm.mov(_POOL_REG, POOL_BASE)
    if needs_alias_base:
        # second base into the same pool, offset by one cache-line-ish
        # stride: [r9 + k] aliases [r12 + k + 8] (memory-aliasing seam)
        asm.mov(_ALIAS_BASE_REG, POOL_BASE + 8)
    if needs_link:
        asm.mov(_LINK_REG, 0)
    for token in used_scalar:
        asm.mov(reg_from_str(token), spec.init_regs.get(token, 0))
    for i, token in enumerate(used_vector):
        asm.vld1(reg_from_str(token), _POOL_REG, (i * 16) % 64)

    labels = iter(range(1_000_000))

    def fresh(prefix: str) -> str:
        return f"{prefix}_{next(labels)}"

    def emit_items(items: List[BodyItem], depth: int) -> None:
        for item in items:
            if isinstance(item, OpSpec):
                asm.emit(_op_to_instruction(item))
            elif isinstance(item, LoopSpec):
                if depth > 0:
                    # both levels would share the r10 counter; the
                    # generator never nests counted loops inside loops
                    raise ValueError(
                        "nested inner loops are not materialisable")
                top = fresh("inner")
                asm.mov(_INNER_COUNTER, max(1, item.iters))
                asm.label(top)
                emit_items(item.body, depth + 1)
                asm.subs(_INNER_COUNTER, _INNER_COUNTER, 1)
                asm.b(top, cond=Cond.NE)
            elif isinstance(item, SkipSpec):
                if item.link:
                    land = fresh("land")
                    asm.bl(land, link=_LINK_REG)
                    asm.label(land)
                    emit_items(item.body, depth + 1)
                else:
                    end = fresh("skip")
                    asm.b(end, cond=Cond(item.cond))
                    emit_items(item.body, depth + 1)
                    asm.label(end)
            else:  # pragma: no cover - descriptor union is closed
                raise TypeError(f"unknown body item {item!r}")

    if spec.iters > 1:
        top = fresh("outer")
        asm.mov(_OUTER_COUNTER, spec.iters)
        asm.label(top)
        emit_items(spec.body, 0)
        asm.subs(_OUTER_COUNTER, _OUTER_COUNTER, 1)
        asm.b(top, cond=Cond.NE)
    else:
        emit_items(spec.body, 0)
    asm.halt()
    return asm.finish()


def _op_to_instruction(op: OpSpec) -> Instruction:
    def reg(token: Optional[str]) -> Optional[Reg]:
        return reg_from_str(token)

    return Instruction(
        op=Opcode[op.op], rd=reg(op.rd), rn=reg(op.rn), rm=reg(op.rm),
        ra=reg(op.ra), rs=reg(op.rs), imm=op.imm,
        shift=ShiftOp(op.shift) if op.shift else ShiftOp.NONE,
        shift_amt=op.shift_amt, set_flags=op.s,
        dtype=SimdType(op.dtype) if op.dtype else None,
        scale=op.scale)


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GenConfig:
    """Size knobs of one generated program."""

    min_body: int = 4
    max_body: int = 18
    min_iters: int = 2
    max_iters: int = 8
    max_inner_iters: int = 5
    max_nested_ops: int = 5


class ProgramGenerator:
    """Deterministic program source: ``spec(i)`` for i in [0, budget)."""

    def __init__(self, seed: int, config: GenConfig = GenConfig()) -> None:
        self.seed = seed
        self.config = config

    def spec(self, index: int) -> ProgramSpec:
        key = f"{self.seed}:{index}"
        rng = random.Random(key)
        config = self.config
        spec = ProgramSpec(name=f"fuzz-{self.seed}-{index}", seed=key)
        spec.iters = rng.randint(config.min_iters, config.max_iters)
        spec.init_regs = {
            token: rng.choice(_INTERESTING_VALUES)
            if rng.random() < 0.5 else rng.getrandbits(32)
            for token in _OPERAND_REGS}
        spec.pool_words = [rng.choice(_INTERESTING_VALUES)
                           if rng.random() < 0.5 else rng.getrandbits(32)
                           for _ in range(POOL_WORDS)]
        body_len = rng.randint(config.min_body, config.max_body)
        while len(spec.body) < body_len:
            spec.body.extend(self._gen_item(rng, nested=False))
        return spec

    def program(self, index: int) -> Program:
        return materialize(self.spec(index))

    # -- item generation ------------------------------------------------

    def _gen_item(self, rng: random.Random, *,
                  nested: bool) -> List[BodyItem]:
        roll = rng.random()
        if not nested and roll < 0.08:
            iters = rng.randint(2, self.config.max_inner_iters)
            body = self._gen_ops(rng, rng.randint(
                1, self.config.max_nested_ops))
            return [LoopSpec(iters=iters, body=body)]
        if not nested and roll < 0.20:
            # flag chain: a real flag producer, then a conditional
            # forward branch over a short nested body
            producer = self._gen_flag_producer(rng)
            cond = rng.choice([c for c in Cond if c is not Cond.AL])
            body = self._gen_ops(rng, rng.randint(
                1, self.config.max_nested_ops))
            return [producer,
                    SkipSpec(cond=cond.value, link=False, body=body)]
        if not nested and roll < 0.24:
            body = self._gen_ops(rng, rng.randint(1, 2))
            return [SkipSpec(cond=Cond.AL.value, link=True, body=body)]
        return [self._gen_op(rng)]

    def _gen_ops(self, rng: random.Random, count: int) -> List[BodyItem]:
        return [self._gen_op(rng) for _ in range(count)]

    def _gen_flag_producer(self, rng: random.Random) -> OpSpec:
        op = rng.choice(["CMP", "CMN", "TST", "TEQ", "SUB", "ADD",
                         "AND", "EOR"])
        spec = self._gen_op_named(rng, op)
        spec.s = True
        return spec

    def _gen_op(self, rng: random.Random) -> OpSpec:
        return self._gen_op_named(rng, rng.choice(_MENU))

    def _gen_op_named(self, rng: random.Random, name: str) -> OpSpec:
        maker = _MAKERS[name]
        return maker(rng)


def _rreg(rng: random.Random) -> str:
    return rng.choice(_OPERAND_REGS)


def _vreg(rng: random.Random) -> str:
    return rng.choice(_VECTOR_REGS)


def _op2(rng: random.Random) -> Dict[str, Any]:
    """Flexible second operand: register, shifted register or imm."""
    roll = rng.random()
    if roll < 0.45:
        return {"rm": _rreg(rng)}
    if roll < 0.65:
        shift = rng.choice(["lsl", "lsr", "asr", "ror"])
        return {"rm": _rreg(rng), "shift": shift,
                "shift_amt": rng.randint(1, 12)}
    return {"imm": rng.choice((0, 1, 3, 0xFF, 0xFFFF,
                               rng.getrandbits(12)))}


def _dtype(rng: random.Random) -> int:
    return rng.choice((8, 16, 32, 64))


def _dp3(name: str):
    def make(rng: random.Random) -> OpSpec:
        return OpSpec(op=name, rd=_rreg(rng), rn=_rreg(rng),
                      s=rng.random() < 0.3, **_op2(rng))
    return make


def _dp2(name: str):
    def make(rng: random.Random) -> OpSpec:
        return OpSpec(op=name, rd=_rreg(rng), s=rng.random() < 0.3,
                      **_op2(rng))
    return make


def _cmp2(name: str):
    def make(rng: random.Random) -> OpSpec:
        return OpSpec(op=name, rn=_rreg(rng), s=True, **_op2(rng))
    return make


def _shift3(name: str):
    def make(rng: random.Random) -> OpSpec:
        if rng.random() < 0.5:
            return OpSpec(op=name, rd=_rreg(rng), rn=_rreg(rng),
                          imm=rng.randint(0, 31), s=rng.random() < 0.3)
        return OpSpec(op=name, rd=_rreg(rng), rn=_rreg(rng),
                      rm=_rreg(rng), s=rng.random() < 0.3)
    return make


def _rrx(rng: random.Random) -> OpSpec:
    return OpSpec(op="RRX", rd=_rreg(rng), rn=_rreg(rng),
                  s=rng.random() < 0.5)


def _mul3(name: str):
    def make(rng: random.Random) -> OpSpec:
        return OpSpec(op=name, rd=_rreg(rng), rn=_rreg(rng),
                      rm=_rreg(rng))
    return make


def _mla(rng: random.Random) -> OpSpec:
    return OpSpec(op="MLA", rd=_rreg(rng), rn=_rreg(rng),
                  rm=_rreg(rng), ra=_rreg(rng))


def _mem_load(name: str, *, vector: bool = False):
    def make(rng: random.Random) -> OpSpec:
        rd = _vreg(rng) if vector else _rreg(rng)
        base = "r9" if rng.random() < 0.3 else "r12"
        if rng.random() < 0.2 and not vector:
            return OpSpec(op=name, rd=rd, rn=base,
                          rm=_rreg(rng), imm=0,
                          scale=rng.choice((1, 2, 4)))
        limit = POOL_WORDS * 4 - (16 if vector else 4)
        return OpSpec(op=name, rd=rd, rn=base,
                      imm=rng.randint(0, limit))
    return make


def _mem_store(name: str, *, vector: bool = False):
    def make(rng: random.Random) -> OpSpec:
        rs = _vreg(rng) if vector else _rreg(rng)
        base = "r9" if rng.random() < 0.3 else "r12"
        limit = POOL_WORDS * 4 - (16 if vector else 4)
        return OpSpec(op=name, rs=rs, rn=base,
                      imm=rng.randint(0, limit))
    return make


def _v3(name: str):
    def make(rng: random.Random) -> OpSpec:
        return OpSpec(op=name, rd=_vreg(rng), rn=_vreg(rng),
                      rm=_vreg(rng), dtype=_dtype(rng))
    return make


def _vmla(rng: random.Random) -> OpSpec:
    vd = _vreg(rng)
    return OpSpec(op="VMLA", rd=vd, rn=_vreg(rng), rm=_vreg(rng),
                  ra=vd, dtype=_dtype(rng))


def _vdup(rng: random.Random) -> OpSpec:
    return OpSpec(op="VDUP", rd=_vreg(rng), rn=_rreg(rng),
                  dtype=_dtype(rng))


def _vmov(rng: random.Random) -> OpSpec:
    return OpSpec(op="VMOV", rd=_vreg(rng), rn=_vreg(rng))


def _nop(rng: random.Random) -> OpSpec:
    return OpSpec(op="NOP")


_MAKERS = {
    "AND": _dp3("AND"), "ORR": _dp3("ORR"), "EOR": _dp3("EOR"),
    "BIC": _dp3("BIC"),
    "MOV": _dp2("MOV"), "MVN": _dp2("MVN"),
    "TST": _cmp2("TST"), "TEQ": _cmp2("TEQ"), "CMP": _cmp2("CMP"),
    "CMN": _cmp2("CMN"),
    "LSL": _shift3("LSL"), "LSR": _shift3("LSR"),
    "ASR": _shift3("ASR"), "ROR": _shift3("ROR"), "RRX": _rrx,
    "ADD": _dp3("ADD"), "SUB": _dp3("SUB"), "RSB": _dp3("RSB"),
    "ADC": _dp3("ADC"), "SBC": _dp3("SBC"), "RSC": _dp3("RSC"),
    "MUL": _mul3("MUL"), "MLA": _mla,
    "SDIV": _mul3("SDIV"), "UDIV": _mul3("UDIV"),
    "FADD": _mul3("FADD"), "FSUB": _mul3("FSUB"),
    "FMUL": _mul3("FMUL"), "FDIV": _mul3("FDIV"),
    "LDR": _mem_load("LDR"), "LDRB": _mem_load("LDRB"),
    "STR": _mem_store("STR"), "STRB": _mem_store("STRB"),
    "VLD1": _mem_load("VLD1", vector=True),
    "VST1": _mem_store("VST1", vector=True),
    "VADD": _v3("VADD"), "VSUB": _v3("VSUB"), "VMUL": _v3("VMUL"),
    "VMLA": _vmla, "VMAX": _v3("VMAX"), "VMIN": _v3("VMIN"),
    "VAND": _v3("VAND"), "VORR": _v3("VORR"), "VEOR": _v3("VEOR"),
    "VSHL": _v3("VSHL"), "VSHR": _v3("VSHR"),
    "VDUP": _vdup, "VMOV": _vmov,
    "NOP": _nop,
}

_MENU = sorted(_MAKERS)

#: opcodes only the materialiser emits (scaffolding, always present in
#: any non-trivial program)
_SCAFFOLD_OPS = frozenset({Opcode.B, Opcode.BL, Opcode.HALT})


# ---------------------------------------------------------------------------
# coverage accounting
# ---------------------------------------------------------------------------

class OpcodeCoverage:
    """Static and dynamic per-opcode counts across a fuzz session."""

    def __init__(self) -> None:
        self.static: Dict[Opcode, int] = {op: 0 for op in Opcode}
        self.dynamic: Dict[Opcode, int] = {op: 0 for op in Opcode}
        self.programs = 0
        self.dynamic_instructions = 0

    def add_program(self, program: Program,
                    trace: Optional[Trace] = None) -> None:
        self.programs += 1
        for instr in program.instructions:
            self.static[instr.op] += 1
        if trace is not None:
            self.add_trace(trace)

    def add_trace(self, trace: Trace) -> None:
        for entry in trace.entries:
            self.dynamic[entry.instr.op] += 1
            self.dynamic_instructions += 1

    def missing_static(self) -> List[Opcode]:
        return [op for op in Opcode if self.static[op] == 0]

    def missing_dynamic(self) -> List[Opcode]:
        return [op for op in Opcode if self.dynamic[op] == 0]

    @property
    def static_fraction(self) -> float:
        total = len(Opcode)
        return (total - len(self.missing_static())) / total

    def to_payload(self) -> Dict[str, Any]:
        return {
            "programs": self.programs,
            "dynamic_instructions": self.dynamic_instructions,
            "static": {op.name: self.static[op] for op in Opcode},
            "dynamic": {op.name: self.dynamic[op] for op in Opcode},
            "missing_static": [op.name for op in self.missing_static()],
            "missing_dynamic": [op.name
                                for op in self.missing_dynamic()],
        }

    def render(self) -> str:
        """Human-readable coverage table (sorted by static count)."""
        lines = [f"opcode coverage over {self.programs} program(s), "
                 f"{self.dynamic_instructions} dynamic instruction(s):",
                 f"  {'opcode':8s} {'static':>8s} {'dynamic':>10s}"]
        for op in sorted(Opcode, key=lambda o: (-self.static[o], o.name)):
            lines.append(f"  {op.name:8s} {self.static[op]:8d} "
                         f"{self.dynamic[op]:10d}")
        missing = self.missing_static()
        covered = len(Opcode) - len(missing)
        lines.append(f"  covered {covered}/{len(Opcode)} opcodes"
                     + (f"; missing: "
                        f"{', '.join(op.name for op in missing)}"
                        if missing else ""))
        return "\n".join(lines)


def reachable_opcodes() -> List[Opcode]:
    """Every opcode the generator (plus scaffolding) can emit."""
    return sorted(
        {Opcode[name] for name in _MAKERS} | set(_SCAFFOLD_OPS),
        key=lambda op: op.name)


__all__ = [
    "GenConfig", "LoopSpec", "OpSpec", "OpcodeCoverage", "POOL_BASE",
    "POOL_WORDS", "ProgramGenerator", "ProgramSpec", "SkipSpec",
    "item_from_dict", "materialize", "reachable_opcodes",
]
