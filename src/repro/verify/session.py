"""Fuzz-session engine: generate → check → shrink → persist.

The CLI is a thin argument parser over :func:`run_fuzz`; tests drive
this module directly.  A session is a pure function of ``(seed, budget,
config, defect)`` — its summary payload carries no timestamps or host
state, so identical invocations produce byte-identical ``session.json``
files (that determinism is itself under test).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.config import CoreConfig, SMALL
from repro.core.cpu import simulate

from .artifacts import ArtifactStore
from .defects import inject_defect
from .generator import (
    GenConfig,
    OpcodeCoverage,
    ProgramGenerator,
    ProgramSpec,
    materialize,
)
from .oracle import ProgramVerdict, SimulateFn, check_program
from .shrink import ShrinkResult, shrink

#: stop fuzzing after this many findings by default — a systematic bug
#: would otherwise flag most of the budget and shrink each one
DEFAULT_MAX_FAILURES = 8


@dataclass
class Finding:
    """One failing program, optionally with its shrunk reproducer."""

    spec: ProgramSpec
    verdict: ProgramVerdict
    shrunk: Optional[ShrinkResult] = None

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.spec.name,
            "checks": sorted({d.check for d in self.verdict.divergences}),
            "divergences": len(self.verdict.divergences),
        }
        if self.shrunk is not None:
            payload["shrunk_instructions"] = self.shrunk.instructions
            payload["shrink_evaluations"] = self.shrunk.evaluations
        return payload


@dataclass
class FuzzOutcome:
    """Everything one fuzz session learned."""

    seed: int
    budget: int
    config_name: str
    coverage: OpcodeCoverage
    findings: List[Finding] = field(default_factory=list)
    programs_run: int = 0
    defect: Optional[str] = None
    stopped_early: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_payload(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "config": self.config_name,
            "defect": self.defect,
            "programs_run": self.programs_run,
            "stopped_early": self.stopped_early,
            "findings": [f.to_payload() for f in self.findings],
            "coverage": self.coverage.to_payload(),
        }


def _injection(defect: Optional[str]):
    return inject_defect(defect) if defect else contextlib.nullcontext()


def run_fuzz(*, budget: int, seed: int,
             config: CoreConfig = SMALL,
             gen_config: GenConfig = GenConfig(),
             metamorphic: bool = True,
             engines: Optional[Sequence[str]] = None,
             do_shrink: bool = True,
             defect: Optional[str] = None,
             max_failures: int = DEFAULT_MAX_FAILURES,
             simulate_fn: SimulateFn = simulate,
             store: Optional[ArtifactStore] = None,
             progress: Optional[Callable[[int, ProgramVerdict], None]]
             = None) -> FuzzOutcome:
    """Run one deterministic fuzz session.

    *defect* names a :mod:`repro.verify.defects` entry to inject for the
    whole session (the ``--self-check`` path: the oracle had better
    catch it).  *engines* names simulation backends whose SimStats must
    match the audited run on every program × mode (the nightly
    backend-equivalence fuzz).  *store* persists failure artifacts when
    given; *progress* is called after every program with
    ``(index, verdict)``.
    """
    generator = ProgramGenerator(seed, gen_config)
    outcome = FuzzOutcome(seed=seed, budget=budget,
                          config_name=config.name,
                          coverage=OpcodeCoverage(), defect=defect)

    for index in range(budget):
        spec = generator.spec(index)
        program = materialize(spec)
        with _injection(defect):
            verdict = check_program(program, config=config,
                                    metamorphic=metamorphic,
                                    engines=engines,
                                    simulate_fn=simulate_fn)
        outcome.programs_run += 1
        outcome.coverage.add_program(program, verdict.trace)
        if progress is not None:
            progress(index, verdict)
        if verdict.ok:
            continue

        finding = Finding(spec=spec, verdict=verdict)
        if do_shrink:
            finding.shrunk = shrink_finding(
                spec, verdict, config=config, defect=defect,
                simulate_fn=simulate_fn)
        outcome.findings.append(finding)
        if store is not None:
            store.write_failure(spec, verdict, config=config,
                                shrunk=finding.shrunk, defect=defect)
        if len(outcome.findings) >= max_failures:
            outcome.stopped_early = index + 1 < budget
            break

    if store is not None:
        store.write_session(outcome.to_payload())
    return outcome


def shrink_finding(spec: ProgramSpec, verdict: ProgramVerdict, *,
                   config: CoreConfig = SMALL,
                   defect: Optional[str] = None,
                   simulate_fn: SimulateFn = simulate,
                   max_evaluations: int = 1500) -> ShrinkResult:
    """Shrink *spec* while preserving the kind of failure in *verdict*.

    Metamorphic (timing-relation) checks run during shrinking only when
    the original failure involved them — they cost five simulations per
    candidate, and an arch-state divergence doesn't need them.
    """
    need_meta = any(d.check.startswith("meta.")
                    for d in verdict.divergences)

    def is_failing(candidate: ProgramSpec) -> bool:
        with _injection(defect):
            return not check_program(materialize(candidate),
                                     config=config,
                                     metamorphic=need_meta,
                                     simulate_fn=simulate_fn).ok

    return shrink(spec, is_failing, max_evaluations=max_evaluations)


def check_spec(spec: ProgramSpec, *,
               config: CoreConfig = SMALL,
               metamorphic: bool = True,
               engines: Optional[Sequence[str]] = None,
               defect: Optional[str] = None,
               simulate_fn: SimulateFn = simulate) -> ProgramVerdict:
    """Replay one spec through the full oracle (the ``replay`` verb)."""
    with _injection(defect):
        return check_program(materialize(spec), config=config,
                             metamorphic=metamorphic, engines=engines,
                             simulate_fn=simulate_fn)


__all__ = ["DEFAULT_MAX_FAILURES", "Finding", "FuzzOutcome", "check_spec",
           "run_fuzz", "shrink_finding"]
