"""Named, injectable semantics defects for self-checking the verifier.

A fuzzer that never finds a bug is indistinguishable from a fuzzer that
can't.  This module provides a registry of small, realistic semantics
bugs that can be switched on inside a ``with`` block; each one patches
the ``execute`` binding **in** :mod:`repro.pipeline.trace` only, so the
trace executor (and therefore every timing core replaying its traces)
goes wrong while the :class:`~repro.isa.interpreter.Interpreter` golden
model stays correct — exactly the class of divergence the differential
oracle exists to catch.

The CLI's ``fuzz --self-check`` and the test suite use these to prove,
end to end, that a seeded defect is caught *and* shrinks to a minimal
reproducer.

Every defect here is picked to keep generated programs terminating:
none touches ``next_pc``, and none perturbs flag-setting ops (loop
back-edges depend on ``SUBS`` of reserved counter registers).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.semantics import ExecResult

#: mutates an ExecResult in place after the real execute() ran
Mutator = Callable[[Instruction, ExecResult], None]


@dataclass(frozen=True)
class Defect:
    name: str
    description: str
    mutate: Mutator


def _eor_lsb(instr: Instruction, res: ExecResult) -> None:
    if instr.op is Opcode.EOR and instr.rd in res.writes:
        res.writes[instr.rd] ^= 1


def _sub_off_by_one(instr: Instruction, res: ExecResult) -> None:
    # plain SUB only: SUBS drives loop counters, and corrupting those
    # would turn bounded loops into (near-)unbounded ones
    if (instr.op is Opcode.SUB and not instr.set_flags
            and instr.rd in res.writes):
        res.writes[instr.rd] = (res.writes[instr.rd] + 1) & 0xFFFFFFFF

def _store_drop(instr: Instruction, res: ExecResult) -> None:
    if res.is_store:
        res.is_store = False


DEFECTS: Dict[str, Defect] = {d.name: d for d in (
    Defect("eor-lsb",
           "EOR results have their least-significant bit flipped",
           _eor_lsb),
    Defect("sub-off-by-one",
           "non-flag-setting SUB computes rn - operand2 + 1",
           _sub_off_by_one),
    Defect("store-drop",
           "stores are silently discarded (loads see stale memory)",
           _store_drop),
)}

DEFAULT_DEFECT = "eor-lsb"


@contextlib.contextmanager
def inject_defect(name: str) -> Iterator[Defect]:
    """Activate defect *name* inside the ``with`` block.

    Patches ``repro.pipeline.trace.execute`` (the name the trace
    executor calls through), leaving ``repro.isa.semantics.execute``
    and the interpreter's own binding untouched.
    """
    import repro.pipeline.trace as trace_mod

    defect = DEFECTS[name]  # KeyError on unknown names is the API
    original = trace_mod.execute

    def buggy_execute(instr, regs, mem, pc):
        res = original(instr, regs, mem, pc)
        defect.mutate(instr, res)
        return res

    trace_mod.execute = buggy_execute
    try:
        yield defect
    finally:
        trace_mod.execute = original


__all__ = ["DEFAULT_DEFECT", "DEFECTS", "Defect", "Mutator",
           "inject_defect"]
