"""Metamorphic timing properties of the ReDSOC core.

Differential arch-state checks can't judge *timing*; for that we lean on
relations that must hold between runs of the *same trace* under related
configs.  The tolerance is the bound the integration suite has always
documented (``tests/integration/test_random_programs.py``): scheduling
heuristics (skewed select, adaptive thresholds) may cost a few cycles on
adversarial programs, so "never slower" is asserted as

    ``cycles_a <= cycles_b * CYCLE_TOLERANCE + CYCLE_SLOP``

Checked relations, per Sec. IV/VI of the paper:

* **recycling** — ReDSOC (and MOS) never slow a program down relative to
  the synchronous baseline beyond the bound;
* **egpw** — disabling the Eager-Grandparent select phase
  (``eager_issue=False``) never *speeds up* execution: the full design
  must stay within the bound of the ablated one;
* **precision** — a finer completion-indicator precision
  (``ticks_per_cycle``) never loses to a coarser one beyond the bound
  (more precision ⇒ more recognisable slack).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.core.config import CoreConfig, RecycleMode
from repro.core.cpu import simulate
from repro.pipeline.trace import Trace

#: documented slack on "never slower" timing relations (multiplicative
#: and additive), matching the integration-suite tolerance
CYCLE_TOLERANCE = 1.05
CYCLE_SLOP = 10

#: labels the relation runs add to a verdict's ``cycles`` dict
EGPW_OFF_LABEL = "redsoc-noegpw"
COARSE_CI_LABEL = "redsoc-coarse-ci"


def within_bound(lhs: int, rhs: int) -> bool:
    """True when *lhs* is no slower than *rhs* modulo the tolerance."""
    return lhs <= rhs * CYCLE_TOLERANCE + CYCLE_SLOP


def check_timing_relations(
        trace: Trace, config: CoreConfig, cycles: Dict[str, int], *,
        simulate_fn: Callable[[Trace, CoreConfig], Any] = simulate,
) -> List["Divergence"]:
    """Check the metamorphic relations for *trace* on *config*.

    *cycles* must already hold per-:class:`RecycleMode` cycle counts
    keyed by mode value (the oracle's audit pass provides them); any
    extra variant runs this performs are added to it, so the caller's
    report sees every data point.  Returns divergences, empty if all
    relations hold.
    """
    from .oracle import Divergence  # circular-at-import, fine at runtime

    out: List[Divergence] = []
    redsoc = config.with_mode(RecycleMode.REDSOC)

    def run(cfg: CoreConfig, label: str) -> int:
        if label not in cycles:
            cycles[label] = simulate_fn(trace, cfg).stats.cycles
        return cycles[label]

    base = run(config.with_mode(RecycleMode.BASELINE),
               RecycleMode.BASELINE.value)
    full = run(redsoc, RecycleMode.REDSOC.value)

    # 1. recycling never slows execution (beyond the documented bound)
    for label in (RecycleMode.REDSOC.value, RecycleMode.MOS.value):
        if label not in cycles:
            continue
        if not within_bound(cycles[label], base):
            out.append(Divergence(
                "meta.recycling", label,
                f"{label} took {cycles[label]} cycles vs baseline {base} "
                f"(bound {CYCLE_TOLERANCE}x + {CYCLE_SLOP})"))

    # 2. disabling EGPW never speeds execution
    no_egpw = run(redsoc.variant(eager_issue=False), EGPW_OFF_LABEL)
    if not within_bound(full, no_egpw):
        out.append(Divergence(
            "meta.egpw", RecycleMode.REDSOC.value,
            f"full design took {full} cycles but the eager_issue=False "
            f"ablation took {no_egpw} — disabling EGPW sped execution "
            f"up beyond the bound"))

    # 3. coarser CI precision never beats finer precision
    coarse_ticks = max(2, config.ticks_per_cycle // 2)
    if coarse_ticks < config.ticks_per_cycle:
        coarse = run(redsoc.variant(ticks_per_cycle=coarse_ticks),
                     COARSE_CI_LABEL)
        if not within_bound(full, coarse):
            out.append(Divergence(
                "meta.precision", RecycleMode.REDSOC.value,
                f"{config.ticks_per_cycle}-tick CI took {full} cycles "
                f"but {coarse_ticks}-tick CI took {coarse} — coarser "
                f"precision beat finer beyond the bound"))
    return out


__all__ = [
    "CYCLE_SLOP", "CYCLE_TOLERANCE", "COARSE_CI_LABEL", "EGPW_OFF_LABEL",
    "check_timing_relations", "within_bound",
]
