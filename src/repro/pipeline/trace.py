"""Dynamic-trace generation: the functional-first half of the simulator.

The timing simulator is *trace-driven*: the reference interpreter first
executes the program and records one :class:`TraceEntry` per dynamic
instruction (opcode, register dataflow, actual operand width, memory
address, branch outcome).  The cycle-level model then replays this trace
through the pipeline structures.

This methodology is exact for ReDSOC because slack recycling is a pure
*timing* mechanism — it never changes architectural results (the paper's
design is timing non-speculative).  Branch and width mispredictions are
still modelled faithfully: the predictors run against the recorded
outcomes and their penalties are charged in the timing model; only
wrong-path *fetch bandwidth* is approximated by the redirect penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.registers import Reg, RegisterFile
from repro.isa.semantics import execute


@dataclass
class TraceEntry:
    """One dynamic instruction with its functional outcome."""

    __slots__ = ("instr", "pc", "next_pc", "taken", "op_width", "mem_addr",
                 "mem_size", "is_store", "cls")

    instr: Instruction
    pc: int
    next_pc: int
    taken: bool
    op_width: int
    mem_addr: Optional[int]
    mem_size: int
    is_store: bool

    def __post_init__(self) -> None:
        # not a field: the op class is derived, cached per entry so the
        # fetch/dispatch hot paths read a slot instead of a property
        self.cls = self.instr.cls


@dataclass
class Trace:
    """A complete dynamic trace plus the final architectural state."""

    name: str
    entries: List[TraceEntry]
    final_regs: Dict
    final_mem: Dict

    def __len__(self) -> int:
        return len(self.entries)

    def arch_state(self) -> Dict:
        return {"regs": self.final_regs, "mem": self.final_mem}


def generate_trace(program: Program, *,
                   init_regs: Optional[Dict[Reg, int]] = None,
                   max_instructions: int = 5_000_000) -> Trace:
    """Functionally execute *program* and record its dynamic trace."""
    program.validate()
    regs = RegisterFile()
    for reg, value in (init_regs or {}).items():
        regs.write(reg, value)
    mem = program.build_memory()

    entries: List[TraceEntry] = []
    pc = program.entry
    instrs = program.instructions
    append = entries.append
    write_reg = regs.write
    write_mem = mem.write
    count = 0
    while count < max_instructions:
        instr = instrs[pc]
        result = execute(instr, regs, mem, pc)
        append(TraceEntry(
            instr=instr, pc=pc, next_pc=result.next_pc, taken=result.taken,
            op_width=result.op_width, mem_addr=result.mem_addr,
            mem_size=result.mem_size, is_store=result.is_store))
        count += 1
        for reg, value in result.writes.items():
            write_reg(reg, value)
        if result.is_store:
            write_mem(result.mem_addr, result.store_value, result.mem_size)
        if result.halted:
            break
        pc = result.next_pc
    else:
        raise RuntimeError(
            f"{program.name!r} exceeded {max_instructions} instructions")
    return Trace(name=program.name, entries=entries,
                 final_regs=regs.snapshot(), final_mem=mem.snapshot())
