"""Dynamic micro-op state flowing through the timing pipeline."""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass

from .trace import TraceEntry


class UopState(enum.Enum):
    DISPATCHED = "dispatched"   # in ROB + RS, waiting for sources
    ISSUED = "issued"           # selected, timing computed
    DONE = "done"               # result available
    COMMITTED = "committed"


#: Stable small-integer index per :class:`OpClass` (definition order).
#: The hot scheduler paths index plain lists with it instead of hashing
#: enum members — ``Enum.__hash__`` is a Python-level call and shows up
#: hot when every wakeup/select touches per-class dicts.
OPCLASS_INDEX = {cls: idx for idx, cls in enumerate(OpClass)}


class Uop:
    """One in-flight dynamic instruction.

    Timing fields are absolute *ticks* (see :mod:`repro.core.ticks`):

    * ``start_tick`` — instant real computation begins at the FU,
    * ``end_tick`` — instant the result stabilises (the CI, un-quantised
      cycle-relative form is ``end_tick % ticks_per_cycle``),
    * ``avail_tick`` — instant a *transparent* consumer may use the value
      (= ``end_tick``); synchronous consumers round up to the next edge.

    ``ex_ticks`` is the EX-TIME the scheduler used (from the slack LUT
    with the *predicted* width); ``actual_ex_ticks`` uses the observed
    width and exposes aggressive width mispredictions at execute.
    """

    __slots__ = (
        "seq", "entry", "sources", "dependents", "state",
        "fu_class", "cls_idx", "in_ready", "latency_cycles", "transparent",
        "ex_ticks", "actual_ex_ticks", "predicted_width",
        "watched_parent", "watched_grandparent", "second_predicted_last",
        "pending_sources", "eligible_cycle", "issue_cycle",
        "start_tick", "end_tick", "avail_tick", "sync_avail", "done_cycle",
        "chain_id", "chain_pos", "gp_issued", "replayed",
        "extra_cycle_hold", "waiting_on", "la_applied", "width_applied",
        "mem_hl", "order_dep",
    )

    def __init__(self, seq: int, entry: TraceEntry) -> None:
        self.seq = seq
        self.entry = entry
        #: producing Uops for each register source (dataflow edges)
        self.sources: List[Optional["Uop"]] = []
        self.dependents: List["Uop"] = []
        self.state = UopState.DISPATCHED
        self.fu_class: OpClass = entry.cls
        self.cls_idx = OPCLASS_INDEX[self.fu_class]
        #: live entry in the ready (pending-select) queue of its class;
        #: cleared by ReadyQueues.remove (tombstone — the queue slot is
        #: reclaimed lazily, so removal is O(1))
        self.in_ready = False
        self.latency_cycles = 1
        self.transparent = False
        self.ex_ticks = 0
        self.actual_ex_ticks = 0
        self.predicted_width = 32
        self.watched_parent: Optional["Uop"] = None
        self.watched_grandparent: Optional["Uop"] = None
        self.second_predicted_last = True
        self.pending_sources = 0
        self.eligible_cycle: Optional[int] = None
        self.issue_cycle: Optional[int] = None
        self.start_tick = 0
        self.end_tick = 0
        self.avail_tick = 0
        self.sync_avail = 0
        self.done_cycle: Optional[int] = None
        self.chain_id: Optional[int] = None
        self.chain_pos = 0
        self.gp_issued = False
        self.replayed = False
        self.extra_cycle_hold = False
        #: watched source uops that have not broadcast yet
        self.waiting_on: set = set()
        self.la_applied = False       # last-arrival prediction in use
        self.width_applied = False    # width prediction in use
        self.mem_hl = False           # load missed L1 (Fig. 10 class)
        #: memory-ordering dependency: the youngest older store (loads
        #: wait for all older store addresses — no disambiguation
        #: speculation); carried outside `sources` so it gates issue
        #: order without affecting operand-availability timing
        self.order_dep: Optional["Uop"] = None

    @property
    def instr(self) -> Instruction:
        return self.entry.instr

    def __repr__(self) -> str:
        return f"Uop#{self.seq}({self.instr!r}, {self.state.value})"
