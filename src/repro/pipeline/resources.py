"""Execution-resource accounting: FU pools with per-cycle reservations.

ReDSOC's IT3 holds a functional unit for **two** cycles when an
operation's (mid-cycle-offset) execution crosses a clock edge — that
extra occupancy is the mechanism's main cost (Fig. 14's higher FU-stall
rates), so the FU model must track reservations on future cycles, not
just a per-cycle counter.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.isa.opcodes import OpClass


@dataclass
class FUStats:
    """Per-class issue/stall counters (Fig. 14)."""

    issues: Dict[OpClass, int] = field(
        default_factory=lambda: defaultdict(int))
    #: cycles in which >= 1 ready request found every unit busy
    stall_cycles: int = 0
    #: total cycles simulated (denominator for the stall rate)
    cycles: int = 0
    #: extra-cycle (2-cycle) holds taken by slack recycling
    two_cycle_holds: int = 0

    @property
    def stall_rate(self) -> float:
        return self.stall_cycles / self.cycles if self.cycles else 0.0


class FUPool:
    """Reservation table for one class of functional units."""

    __slots__ = ("op_class", "count", "_busy")

    def __init__(self, op_class: OpClass, count: int) -> None:
        self.op_class = op_class
        self.count = count
        # plain dict + .get: a defaultdict would insert a zero entry for
        # every cycle ever *queried*, which the per-cycle free_at probes
        # turn into unbounded growth (and release_past scan time)
        self._busy: Dict[int, int] = {}

    def free_at(self, cycle: int) -> int:
        return self.count - self._busy.get(cycle, 0)

    def can_reserve(self, cycle: int, *, extra_cycle: bool = False) -> bool:
        busy = self._busy
        if busy.get(cycle, 0) >= self.count:
            return False
        if extra_cycle and busy.get(cycle + 1, 0) >= self.count:
            return False
        return True

    def reserve(self, cycle: int, *, extra_cycle: bool = False) -> None:
        if not self.can_reserve(cycle, extra_cycle=extra_cycle):
            raise RuntimeError(
                f"{self.op_class}: no free unit at cycle {cycle}")
        busy = self._busy
        busy[cycle] = busy.get(cycle, 0) + 1
        if extra_cycle:
            busy[cycle + 1] = busy.get(cycle + 1, 0) + 1

    def try_reserve(self, cycle: int, *, extra_cycle: bool = False) -> bool:
        """Reserve if a unit is free; one probe for the check + claim.

        Fused ``can_reserve`` + ``reserve`` for the issue hot path —
        ``reserve`` alone re-validates, doubling the dict probes.
        """
        busy = self._busy
        n = busy.get(cycle, 0)
        if n >= self.count:
            return False
        if extra_cycle:
            m = busy.get(cycle + 1, 0)
            if m >= self.count:
                return False
            busy[cycle + 1] = m + 1
        busy[cycle] = n + 1
        return True

    def release_past(self, cycle: int) -> None:
        """Drop bookkeeping for cycles before *cycle* (memory hygiene)."""
        for c in [c for c in self._busy if c < cycle]:
            del self._busy[c]


class ExecutionResources:
    """All FU pools of a core (Table I's ALU/SIMD/FP columns + memory).

    Loads/stores share ``mem_ports``; MUL/DIV share the SIMD/FP pools'
    sibling integer-complex unit, modelled as its own small pool.
    """

    def __init__(self, *, alu: int, simd: int, fp: int, mem_ports: int,
                 complex_units: int = 1, branch_units: int = 2) -> None:
        self.pools: Dict[OpClass, FUPool] = {
            OpClass.ALU: FUPool(OpClass.ALU, alu),
            OpClass.SIMD: FUPool(OpClass.SIMD, simd),
            OpClass.FP: FUPool(OpClass.FP, fp),
            OpClass.LOAD: FUPool(OpClass.LOAD, mem_ports),
            OpClass.STORE: FUPool(OpClass.STORE, mem_ports),
            OpClass.MUL: FUPool(OpClass.MUL, complex_units),
            OpClass.DIV: FUPool(OpClass.DIV, complex_units),
            OpClass.BRANCH: FUPool(OpClass.BRANCH, branch_units),
        }
        self.stats = FUStats()

    def pool_for(self, op_class: OpClass) -> FUPool:
        return self.pools[op_class]

    def release_past(self, cycle: int) -> None:
        for pool in self.pools.values():
            pool.release_past(cycle)
