"""Compiled trace generation: per-basic-block specialized step functions.

:func:`repro.pipeline.trace.generate_trace` interprets one instruction at
a time through the generic :func:`repro.isa.semantics.execute` dispatch —
an :class:`ExecResult` allocation, a dict of register writes and a chain
of opcode tests per dynamic instruction.  For the compiled simulation
backend that interpreter is the cold-throughput bottleneck: the timing
replay was lowered to flat columns, but every trace still had to be
*produced* the slow way.

This module lowers the **program** instead.  Each static basic block
(straight-line run ended by a branch or ``HALT``) is compiled once into a
specialized Python step function whose body inlines the semantics of its
instructions — register indices, immediates, shift amounts and effective
widths of constants are baked in as literals, and the function appends
finished :class:`~repro.pipeline.trace.TraceEntry` records directly.  A
tiny driver loop then runs ``pc, flags = block[pc](flags)`` until halt.

Fidelity contract: the produced :class:`~repro.pipeline.trace.Trace` is
**bit-identical** to the interpreter's — same entries, same final
architectural state, same ``max_instructions`` overrun behaviour.  Ops
without a specialized template (SIMD, vector memory, register-amount
shifts) fall back to :func:`execute` *inside* the generated block, so a
program is never rejected; it just runs its exotic instructions at
interpreter speed.  The differential fuzzer (`repro.verify`) pits this
generator against the interpreter on every program when the compiled
engine is under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, OpClass, Opcode, ShiftOp
from repro.isa.program import Program
from repro.isa.registers import (
    Reg,
    RegClass,
    RegisterFile,
    WORD_MASK,
)
from repro.isa.semantics import effective_width, execute

from .trace import Trace, TraceEntry

_M = WORD_MASK          # 0xFFFFFFFF, emitted as a literal
_H = 0x80000000
_T32 = 1 << 32          # two's-complement bias, emitted as a literal

#: opcodes with a specialized template; everything else (SIMD, vector
#: load/store) takes the in-block interpreter fallback
_ALU_LOGICAL = {Opcode.AND, Opcode.ORR, Opcode.EOR, Opcode.BIC,
                Opcode.MVN, Opcode.MOV, Opcode.TST, Opcode.TEQ}
_ALU_ARITH = {Opcode.ADD, Opcode.SUB, Opcode.RSB, Opcode.ADC,
              Opcode.SBC, Opcode.RSC, Opcode.CMP, Opcode.CMN}
_SHIFTS = {Opcode.LSL: ShiftOp.LSL, Opcode.LSR: ShiftOp.LSR,
           Opcode.ASR: ShiftOp.ASR, Opcode.ROR: ShiftOp.ROR}
_FLAG_FREE_DESTS = {Opcode.TST, Opcode.TEQ, Opcode.CMP, Opcode.CMN}

#: branch condition → bool expression over the packed NZCV nibble ``F``
#: (N:3, Z:2, C:1, V:0); ``None`` marks the unconditional case
_COND_EXPR = {
    Cond.AL: None,
    Cond.EQ: "(F & 4) != 0",
    Cond.NE: "(F & 4) == 0",
    Cond.LT: "(((F >> 3) ^ F) & 1) != 0",
    Cond.GE: "(((F >> 3) ^ F) & 1) == 0",
    Cond.GT: "(F & 4) == 0 and (((F >> 3) ^ F) & 1) == 0",
    Cond.LE: "(F & 4) != 0 or (((F >> 3) ^ F) & 1) != 0",
    Cond.CS: "(F & 2) != 0",
    Cond.CC: "(F & 2) == 0",
    Cond.MI: "(F & 8) != 0",
    Cond.PL: "(F & 8) == 0",
}


def _uses_vector_regs(instr: Instruction) -> bool:
    return any(reg is not None and reg.cls is not RegClass.INT
               for reg in (instr.rd, instr.rn, instr.rm, instr.ra,
                           instr.rs))


def _inline_supported(instr: Instruction) -> bool:
    """Can *instr* be specialized, or does it need the interpreter?"""
    op = instr.op
    if op in (Opcode.NOP, Opcode.HALT):
        return True
    if _uses_vector_regs(instr):
        return False
    if op in (Opcode.B, Opcode.BL):
        return isinstance(instr.target, int)
    if op in _SHIFTS:
        return instr.rm is None      # register-amount shifts fall back
    if op is Opcode.RRX:
        return False                 # standalone RRX is rare; fall back
    if op in _ALU_LOGICAL or op in _ALU_ARITH:
        return True
    if op in (Opcode.MUL, Opcode.MLA, Opcode.SDIV, Opcode.UDIV):
        return True
    if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
        return True
    if op in (Opcode.LDR, Opcode.LDRB):
        return True
    if op in (Opcode.STR, Opcode.STRB):
        return instr.rs is not None
    return False


def _ew_expr(name: str) -> str:
    """Effective-width expression for an already-masked temp *name*."""
    return (f"((({name}) ^ 4294967295) if ({name}) & 2147483648 "
            f"else ({name})).bit_length() + 1")


def _signed_expr(name: str) -> str:
    return f"(({name} - 4294967296) if {name} & 2147483648 else {name})"


def _fold_shift(raw: int, shift: ShiftOp, amount: int) -> Tuple[int, str]:
    """Constant-fold a shift whose carry does not depend on carry-in."""
    from repro.isa.semantics import _apply_shift

    value, carry = _apply_shift(raw, shift, amount, False)
    return value, ("True" if carry else "False")


def _emit_shift(lines: List[str], raw: str, shift: ShiftOp,
                amount: int) -> Tuple[str, str]:
    """Emit code computing ``_apply_shift(raw, shift, amount, C)``.

    *raw* is a temp holding a masked 32-bit value; *amount* is the
    compile-time shift amount.  Returns ``(value_expr, carry_expr)``.
    """
    amount &= 0xFF
    if shift is ShiftOp.NONE or (amount == 0 and shift is not ShiftOp.RRX):
        return raw, "(F >> 1) & 1"
    if shift is ShiftOp.LSL:
        if amount >= 33:
            return "0", "False"
        return (f"(({raw} << {amount}) & 4294967295)",
                f"(({raw} << {amount}) >> 32) & 1")
    if shift is ShiftOp.LSR:
        if amount > 32:
            return "0", "False"
        return (f"({raw} >> {amount})",
                f"({raw} >> {amount - 1}) & 1")
    if shift is ShiftOp.ASR:
        amount = min(amount, 32)
        lines.append(f"    _s = {_signed_expr(raw)}")
        return (f"((_s >> {amount}) & 4294967295)",
                f"(_s >> {amount - 1}) & 1")
    if shift is ShiftOp.ROR:
        amount %= 32
        if amount == 0:
            return raw, f"{raw} >> 31"
        lines.append(f"    _s = (({raw} >> {amount}) | "
                     f"({raw} << {32 - amount})) & 4294967295")
        return "_s", "_s >> 31"
    # RRX: rotate right through carry by one
    return (f"(({raw} >> 1) | (((F >> 1) & 1) << 31))",
            f"{raw} & 1")


@dataclass
class _Op2:
    """The evaluated flexible second operand of one static instruction."""

    value: str      # expression for the post-shift masked value
    carry: str      # shifter carry-out expression (flag updates only)
    raw_bl: Optional[int]   # bit_length of a constant raw operand ...
    raw: Optional[str]      # ... or the temp holding the raw register


def _emit_operand2(lines: List[str], instr: Instruction) -> _Op2:
    if instr.rm is not None:
        lines.append(f"    _p = I[{instr.rm.index}]")
        value, carry = _emit_shift(lines, "_p", instr.shift,
                                   instr.shift_amt)
        return _Op2(value=value, carry=carry, raw_bl=None, raw="_p")
    raw = (instr.imm or 0) & _M
    raw_bl = effective_width(raw) - 1
    shift, amount = instr.shift, instr.shift_amt & 0xFF
    if shift is ShiftOp.NONE or (amount == 0 and shift is not ShiftOp.RRX):
        return _Op2(value=str(raw), carry="(F >> 1) & 1",
                    raw_bl=raw_bl, raw=None)
    if shift is ShiftOp.RRX:
        value, carry = _emit_shift(lines, str(raw), shift, amount)
        return _Op2(value=value, carry=carry, raw_bl=raw_bl, raw=None)
    value, carry = _fold_shift(raw, shift, amount)
    return _Op2(value=str(value), carry=carry, raw_bl=raw_bl, raw=None)


def _width_max_expr(lines: List[str], rn_temp: Optional[str],
                    op2: _Op2) -> str:
    """Expression for ``max(ew(rn), ew(raw op2))`` per the interpreter."""
    if rn_temp is None:
        if op2.raw is None:
            return str(op2.raw_bl + 1)
        return _ew_expr(op2.raw)
    lines.append(f"    _wa = (({rn_temp} ^ 4294967295) if {rn_temp} & "
                 f"2147483648 else {rn_temp}).bit_length()")
    if op2.raw is None:
        bl = op2.raw_bl
        return f"((_wa if _wa > {bl} else {bl}) + 1)"
    lines.append(f"    _wb = (({op2.raw} ^ 4294967295) if {op2.raw} & "
                 f"2147483648 else {op2.raw}).bit_length()")
    return "((_wa if _wa > _wb else _wb) + 1)"


def _entry(pc: int, next_pc, taken: str, width: str, mem_addr: str,
           mem_size: int, is_store: str) -> str:
    return (f"    ap(TE(i{pc}, {pc}, {next_pc}, {taken}, {width}, "
            f"{mem_addr}, {mem_size}, {is_store}))")


def _logical_F(result: str, carry: str) -> str:
    return (f"    F = (({result} >> 31) << 3) | (0 if {result} else 4) "
            f"| (2 if {carry} else 0) | (F & 1)")


def _emit_alu(lines: List[str], instr: Instruction, pc: int) -> None:
    op = instr.op
    if instr.rn is not None:
        lines.append(f"    _a = I[{instr.rn.index}]")
        rn_temp = "_a"
    else:
        # rn reads as zero in the interpreter; width ignores it
        lines.append("    _a = 0")
        rn_temp = None

    if op in _SHIFTS:
        # standalone shift with an immediate amount
        value, carry = _emit_shift(lines, "_a", _SHIFTS[op],
                                   instr.imm or 0)
        lines.append(f"    _r = {value}")
        lines.append(_entry(pc, pc + 1, "False", _ew_expr("_a"),
                            "None", 0, "False"))
        lines.append(f"    I[{instr.rd.index}] = _r")
        if instr.set_flags:
            lines.append(_logical_F("_r", carry))
        return

    op2 = _emit_operand2(lines, instr)
    width = _width_max_expr(lines, rn_temp, op2)

    if op in _ALU_LOGICAL:
        expr = {
            Opcode.AND: f"_a & {op2.value}", Opcode.TST: f"_a & {op2.value}",
            Opcode.ORR: f"_a | {op2.value}",
            Opcode.EOR: f"_a ^ {op2.value}", Opcode.TEQ: f"_a ^ {op2.value}",
            Opcode.BIC: f"_a & ({op2.value} ^ 4294967295)",
            Opcode.MVN: f"{op2.value} ^ 4294967295",
            Opcode.MOV: f"{op2.value}",
        }[op]
        lines.append(f"    _r = {expr}")
        lines.append(_entry(pc, pc + 1, "False", width, "None", 0, "False"))
        if op not in _FLAG_FREE_DESTS:
            lines.append(f"    I[{instr.rd.index}] = _r")
        if instr.set_flags or op in (Opcode.TST, Opcode.TEQ):
            lines.append(_logical_F("_r", op2.carry))
        return

    # arithmetic group: everything is an add of (x, y, cin)
    cin = {Opcode.ADD: "0", Opcode.CMN: "0", Opcode.SUB: "1",
           Opcode.CMP: "1", Opcode.RSB: "1",
           Opcode.ADC: "((F >> 1) & 1)", Opcode.SBC: "((F >> 1) & 1)",
           Opcode.RSC: "((F >> 1) & 1)"}[op]
    if op in (Opcode.ADD, Opcode.CMN, Opcode.ADC):
        x, y = "_a", op2.value
    elif op in (Opcode.SUB, Opcode.CMP, Opcode.SBC):
        x, y = "_a", f"({op2.value}) ^ 4294967295"
    else:   # RSB / RSC: op2 - rn
        x, y = f"({op2.value})", "_a ^ 4294967295"
    lines.append(f"    _x = {x}")
    lines.append(f"    _y = {y}")
    lines.append(f"    _u = _x + _y + {cin}")
    lines.append("    _r = _u & 4294967295")
    lines.append(_entry(pc, pc + 1, "False", width, "None", 0, "False"))
    if op not in _FLAG_FREE_DESTS:
        lines.append(f"    I[{instr.rd.index}] = _r")
    if instr.set_flags or op in (Opcode.CMP, Opcode.CMN):
        lines.append(f"    _sv = {_signed_expr('_x')} + "
                     f"{_signed_expr('_y')} + {cin}")
        lines.append(
            "    F = ((_r >> 31) << 3) | (0 if _r else 4) "
            "| (2 if _u > 4294967295 else 0) "
            "| (0 if -2147483648 <= _sv < 2147483648 else 1)")


def _emit_muldiv(lines: List[str], instr: Instruction, pc: int) -> None:
    lines.append(f"    _a = I[{instr.rn.index}]")
    lines.append(f"    _b = I[{instr.rm.index}]")
    op = instr.op
    if op is Opcode.MUL:
        lines.append("    _r = (_a * _b) & 4294967295")
    elif op is Opcode.MLA:
        lines.append(f"    _r = (_a * _b + I[{instr.ra.index}]) "
                     "& 4294967295")
    elif op is Opcode.UDIV:
        lines.append("    _r = (_a // _b) & 4294967295 if _b else 0")
    else:   # SDIV truncates toward zero via float division, like the
        # interpreter — replicated expression-for-expression
        lines.append(f"    _sa = {_signed_expr('_a')}")
        lines.append(f"    _sb = {_signed_expr('_b')}")
        lines.append("    _r = (int(_sa / _sb) if _sb else 0) "
                     "& 4294967295")
    lines.append("    _wa = ((_a ^ 4294967295) if _a & 2147483648 "
                 "else _a).bit_length()")
    lines.append("    _wb = ((_b ^ 4294967295) if _b & 2147483648 "
                 "else _b).bit_length()")
    lines.append(_entry(pc, pc + 1, "False",
                        "((_wa if _wa > _wb else _wb) + 1)",
                        "None", 0, "False"))
    lines.append(f"    I[{instr.rd.index}] = _r")


def _emit_fp(lines: List[str], instr: Instruction, pc: int) -> None:
    lines.append(f"    _a = I[{instr.rn.index}]")
    lines.append(f"    _b = I[{instr.rm.index}]")
    lines.append(f"    _fa = {_signed_expr('_a')} / 65536.0")
    lines.append(f"    _fb = {_signed_expr('_b')} / 65536.0")
    expr = {Opcode.FADD: "_fa + _fb", Opcode.FSUB: "_fa - _fb",
            Opcode.FMUL: "_fa * _fb",
            Opcode.FDIV: "(_fa / _fb if _fb else 0.0)"}[instr.op]
    lines.append(f"    _fv = {expr}")
    lines.append(_entry(pc, pc + 1, "False", "32", "None", 0, "False"))
    lines.append(f"    I[{instr.rd.index}] = "
                 "int(_fv * 65536.0) & 4294967295")


def _emit_addr(lines: List[str], instr: Instruction) -> None:
    parts = []
    if instr.rn is not None:
        parts.append(f"I[{instr.rn.index}]")
    if instr.rm is not None:
        parts.append(f"I[{instr.rm.index}] * {instr.scale}"
                     if instr.scale != 1 else f"I[{instr.rm.index}]")
    if instr.imm:
        parts.append(str(instr.imm))
    expr = " + ".join(parts) or "0"
    lines.append(f"    _ad = ({expr}) & 4294967295")


def _emit_mem(lines: List[str], instr: Instruction, pc: int) -> None:
    op = instr.op
    _emit_addr(lines, instr)
    if op is Opcode.LDR:
        lines.append("    _v = Bg(_ad, 0) | (Bg(_ad + 1, 0) << 8) | "
                     "(Bg(_ad + 2, 0) << 16) | (Bg(_ad + 3, 0) << 24)")
        lines.append(_entry(pc, pc + 1, "False", _ew_expr("_v"),
                            "_ad", 4, "False"))
        lines.append(f"    I[{instr.rd.index}] = _v")
    elif op is Opcode.LDRB:
        lines.append("    _v = Bg(_ad, 0)")
        lines.append(_entry(pc, pc + 1, "False", _ew_expr("_v"),
                            "_ad", 1, "False"))
        lines.append(f"    I[{instr.rd.index}] = _v")
    elif op is Opcode.STR:
        lines.append(f"    _sv = I[{instr.rs.index}]")
        lines.append(_entry(pc, pc + 1, "False", "32", "_ad", 4, "True"))
        lines.append("    B[_ad] = _sv & 255")
        lines.append("    B[_ad + 1] = (_sv >> 8) & 255")
        lines.append("    B[_ad + 2] = (_sv >> 16) & 255")
        lines.append("    B[_ad + 3] = (_sv >> 24) & 255")
    else:   # STRB
        lines.append(_entry(pc, pc + 1, "False", "32", "_ad", 1, "True"))
        lines.append(f"    B[_ad] = I[{instr.rs.index}] & 255")


def _emit_branch(lines: List[str], instr: Instruction, pc: int) -> None:
    target = instr.target
    link = (f"    I[{instr.rd.index}] = {(pc + 1) & _M}"
            if instr.op is Opcode.BL and instr.rd is not None else None)
    cond = _COND_EXPR[instr.cond]
    if cond is None:
        lines.append(_entry(pc, target, "True", "32", "None", 0, "False"))
        if link:
            lines.append(link)
        lines.append(f"    return {target}, F")
        return
    lines.append(f"    if {cond}:")
    lines.append("    " + _entry(pc, target, "True", "32", "None", 0,
                                 "False"))
    if link:
        lines.append("    " + link)
    lines.append(f"        return {target}, F")
    lines.append(_entry(pc, pc + 1, "False", "32", "None", 0, "False"))
    if link:
        lines.append(link)
    lines.append(f"    return {pc + 1}, F")


def _emit_fallback(lines: List[str], pc: int) -> None:
    """Interpret one exotic instruction in place, state fully synced."""
    lines.append("    regs._flags = F")
    lines.append(f"    _res = ex(i{pc}, regs, mem, {pc})")
    lines.append(f"    ap(TE(i{pc}, {pc}, _res.next_pc, _res.taken, "
                 "_res.op_width, _res.mem_addr, _res.mem_size, "
                 "_res.is_store))")
    lines.append("    for _rg, _vl in _res.writes.items():")
    lines.append("        wr(_rg, _vl)")
    lines.append("    if _res.is_store:")
    lines.append("        mw(_res.mem_addr, _res.store_value, "
                 "_res.mem_size)")
    lines.append("    F = regs._flags")


def _emit_instr(lines: List[str], instr: Instruction, pc: int) -> None:
    op = instr.op
    if op is Opcode.NOP:
        lines.append(_entry(pc, pc + 1, "False", "32", "None", 0, "False"))
        return
    if op is Opcode.HALT:
        lines.append(_entry(pc, pc + 1, "False", "32", "None", 0, "False"))
        lines.append("    return -1, F")
        return
    if not _inline_supported(instr):
        _emit_fallback(lines, pc)
        return
    cls = instr.cls
    if cls is OpClass.BRANCH:
        _emit_branch(lines, instr, pc)
    elif cls in (OpClass.LOAD, OpClass.STORE):
        _emit_mem(lines, instr, pc)
    elif cls in (OpClass.MUL, OpClass.DIV):
        _emit_muldiv(lines, instr, pc)
    elif cls is OpClass.FP:
        _emit_fp(lines, instr, pc)
    else:
        _emit_alu(lines, instr, pc)


@dataclass
class CompiledProgram:
    """One program lowered to per-basic-block step functions.

    ``blocks`` maps each leader pc to ``(function name, block length)``;
    the code object defines every function when exec'd against a
    namespace carrying the run's mutable state (see
    :func:`generate_trace_compiled`).
    """

    code: object
    blocks: Dict[int, Tuple[str, int]]
    source: str


def _leaders(program: Program) -> List[int]:
    instrs = program.instructions
    leaders = {0, program.entry}
    for pc, instr in enumerate(instrs):
        if instr.cls is OpClass.BRANCH:
            if isinstance(instr.target, int):
                leaders.add(instr.target)
            leaders.add(pc + 1)
        elif instr.op is Opcode.HALT:
            leaders.add(pc + 1)
    return sorted(pc for pc in leaders if 0 <= pc < len(instrs))


def compile_program(program: Program) -> CompiledProgram:
    """Lower *program* into specialized basic-block step functions."""
    cached = getattr(program, "_compiled_gen", None)
    if cached is not None:
        return cached
    instrs = program.instructions
    leaders = set(_leaders(program))
    blocks: Dict[int, Tuple[str, int]] = {}
    chunks: List[str] = []
    for start in sorted(leaders):
        end = start
        while end < len(instrs):
            instr = instrs[end]
            end += 1
            if (instr.cls is OpClass.BRANCH or instr.op is Opcode.HALT
                    or end in leaders):
                break
        length = end - start
        used = sorted({p for p in range(start, end)})
        args = ", ".join(f"i{p}=i{p}" for p in used)
        lines = [f"def _b{start}(F, I=I, B=B, Bg=Bg, ap=ap, TE=TE"
                 + (", " + args if args else "") + "):"]
        for pc in range(start, end):
            _emit_instr(lines, instrs[pc], pc)
        last = instrs[end - 1]
        if last.cls is not OpClass.BRANCH and last.op is not Opcode.HALT:
            lines.append(f"    return {end}, F")
        blocks[start] = (f"_b{start}", length)
        chunks.append("\n".join(lines))
    source = "\n\n".join(chunks)
    code = compile(source, f"<compiled:{program.name}>", "exec")
    compiled = CompiledProgram(code=code, blocks=blocks, source=source)
    try:
        program._compiled_gen = compiled
    except AttributeError:
        pass
    return compiled


def _slow_tail(program: Program, regs: RegisterFile, mem, entries,
               pc: int, count: int, max_instructions: int) -> bool:
    """Interpret the final instructions near the cap; returns halted."""
    instrs = program.instructions
    append = entries.append
    write_reg = regs.write
    write_mem = mem.write
    while count < max_instructions:
        instr = instrs[pc]
        result = execute(instr, regs, mem, pc)
        append(TraceEntry(
            instr=instr, pc=pc, next_pc=result.next_pc,
            taken=result.taken, op_width=result.op_width,
            mem_addr=result.mem_addr, mem_size=result.mem_size,
            is_store=result.is_store))
        count += 1
        for reg, value in result.writes.items():
            write_reg(reg, value)
        if result.is_store:
            write_mem(result.mem_addr, result.store_value,
                      result.mem_size)
        if result.halted:
            return True
        pc = result.next_pc
    raise RuntimeError(
        f"{program.name!r} exceeded {max_instructions} instructions")


def generate_trace_compiled(
        program: Program, *,
        init_regs: Optional[Dict[Reg, int]] = None,
        max_instructions: int = 5_000_000) -> Trace:
    """Drop-in, bit-identical replacement for ``generate_trace``."""
    program.validate()
    compiled = compile_program(program)
    regs = RegisterFile()
    for reg, value in (init_regs or {}).items():
        regs.write(reg, value)
    mem = program.build_memory()
    entries: List[TraceEntry] = []

    ns = {
        "I": regs._int, "B": mem._bytes, "Bg": mem._bytes.get,
        "ap": entries.append, "TE": TraceEntry,
        "regs": regs, "mem": mem, "ex": execute,
        "wr": regs.write, "mw": mem.write,
    }
    for pc, instr in enumerate(program.instructions):
        ns[f"i{pc}"] = instr
    exec(compiled.code, ns)     # binds per-run state into each block
    table = {start: (ns[name], length)
             for start, (name, length) in compiled.blocks.items()}

    pc = program.entry
    F = regs._flags
    count = 0
    while True:
        step = table.get(pc)
        if step is None or count + step[1] > max_instructions:
            regs._flags = F
            _slow_tail(program, regs, mem, entries, pc, count,
                       max_instructions)
            F = regs._flags
            break
        pc, F = step[0](F)
        count += step[1]
        if pc < 0:
            break
    regs._flags = F
    return Trace(name=program.name, entries=entries,
                 final_regs=regs.snapshot(), final_mem=mem.snapshot())


__all__ = ["CompiledProgram", "compile_program",
           "generate_trace_compiled"]
