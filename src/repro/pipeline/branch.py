"""Gshare branch direction predictor.

The front-end predicts every conditional branch; a misprediction flushes
the pipeline and charges the redirect penalty.  Targets come from the
trace (a BTB would supply them in hardware; taken-branch target delivery
is folded into the same redirect penalty).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class GsharePredictor:
    """Classic gshare: PC xor global-history indexed 2-bit counters."""

    def __init__(self, *, entries: int = 4096, history_bits: int = 12
                 ) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of 2")
        self.entries = entries
        self.history_bits = history_bits
        self._history = 0
        self._counters = [2] * entries  # weakly taken
        self.stats = BranchStats()

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) % self.entries

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Train with the actual outcome; returns True on mispredict."""
        idx = self._index(pc)
        predicted = self._counters[idx] >= 2
        if taken and self._counters[idx] < 3:
            self._counters[idx] += 1
        elif not taken and self._counters[idx] > 0:
            self._counters[idx] -= 1
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask
        self.stats.predictions += 1
        wrong = predicted != taken
        if wrong:
            self.stats.mispredictions += 1
        return wrong
