"""Conventional OOO pipeline substrate: trace, branch, uops, resources."""

from .branch import BranchStats, GsharePredictor
from .resources import ExecutionResources, FUPool, FUStats
from .trace import Trace, TraceEntry, generate_trace
from .uop import Uop, UopState

__all__ = [
    "BranchStats", "ExecutionResources", "FUPool", "FUStats",
    "GsharePredictor", "Trace", "TraceEntry", "Uop", "UopState",
    "generate_trace",
]
