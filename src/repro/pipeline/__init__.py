"""Conventional OOO pipeline substrate: trace, branch, uops, resources."""

from .branch import BranchStats, GsharePredictor
from .codegen import compile_program, generate_trace_compiled
from .resources import ExecutionResources, FUPool, FUStats
from .trace import Trace, TraceEntry, generate_trace
from .uop import Uop, UopState

__all__ = [
    "BranchStats", "ExecutionResources", "FUPool", "FUStats",
    "GsharePredictor", "Trace", "TraceEntry", "Uop", "UopState",
    "compile_program", "generate_trace", "generate_trace_compiled",
]
