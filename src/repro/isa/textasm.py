"""Text assembler: parse assembly source into a Program.

Complements the builder API with a conventional text frontend so
programs can live in ``.s`` files or docstrings::

    program = assemble_text('''
        ; sum the numbers 1..10
            mov   r1, #10
            mov   r2, #0
        loop:
            add   r2, r2, r1
            subs  r1, r1, #1
            bne   loop
            halt
        .word 0x1000: 1, 2, 3
    ''', name="sum")

Syntax
------
* one instruction per line; ``;`` or ``#`` at line start / ``;``
  mid-line starts a comment,
* ``label:`` defines a label (may share a line with an instruction),
* operands: ``rN`` / ``vN`` registers, ``#imm`` immediates (decimal or
  0x hex), ``label`` branch targets,
* flexible second operands: ``add r0, r1, r2, lsr #3``,
* memory: ``ldr r0, [r1]``, ``ldr r0, [r1, #8]``,
  ``ldr r0, [r1, r2, #4]`` (base, index, immediate offset),
* conditional branches: ``beq/bne/blt/bge/bgt/ble/bcs/bcc/bmi/bpl``,
* SIMD types as suffixes: ``vadd.i16 v0, v1, v2``,
* data directives: ``.word addr: w0, w1, ...`` and
  ``.byte addr: b0, b1, ...``,
* the ``s`` suffix sets flags: ``adds``, ``subs``, ``ands``, ...
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .assembler import Asm
from .opcodes import Cond, Opcode, ShiftOp, SimdType
from .program import Program
from .registers import Reg, r, v

_COND_SUFFIXES = {c.value: c for c in Cond if c is not Cond.AL}
_SHIFT_NAMES = {s.value: s for s in ShiftOp if s is not ShiftOp.NONE}

#: data-processing mnemonics handled uniformly: name -> (opcode, #ops)
_DP3 = {"and": Opcode.AND, "orr": Opcode.ORR, "eor": Opcode.EOR,
        "bic": Opcode.BIC, "add": Opcode.ADD, "sub": Opcode.SUB,
        "rsb": Opcode.RSB, "adc": Opcode.ADC, "sbc": Opcode.SBC,
        "rsc": Opcode.RSC}
_DP2 = {"mov": Opcode.MOV, "mvn": Opcode.MVN}
_CMP2 = {"cmp": Opcode.CMP, "cmn": Opcode.CMN, "tst": Opcode.TST,
         "teq": Opcode.TEQ}
_SHIFT3 = {"lsl": Opcode.LSL, "lsr": Opcode.LSR, "asr": Opcode.ASR,
           "ror": Opcode.ROR}
_MUL3 = {"mul": Opcode.MUL, "sdiv": Opcode.SDIV, "udiv": Opcode.UDIV}
_FP3 = {"fadd": Opcode.FADD, "fsub": Opcode.FSUB, "fmul": Opcode.FMUL,
        "fdiv": Opcode.FDIV}
_VEC3 = {"vadd": "vadd", "vsub": "vsub", "vmul": "vmul", "vmla": "vmla",
         "vmax": "vmax", "vmin": "vmin", "vand": "vand", "vorr": "vorr",
         "veor": "veor", "vshl": "vshl", "vshr": "vshr"}


class AssemblyError(ValueError):
    """Raised with the offending line and its number."""

    def __init__(self, lineno: int, line: str, message: str) -> None:
        super().__init__(f"line {lineno}: {message}: {line.strip()!r}")
        self.lineno = lineno


def assemble_text(source: str, *, name: str = "text") -> Program:
    """Assemble *source* into a validated Program."""
    asm = Asm(name)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].strip()
        if not line or line.startswith("#"):
            continue
        try:
            _assemble_line(asm, line)
        except AssemblyError:
            raise
        except Exception as exc:
            raise AssemblyError(lineno, raw, str(exc)) from exc
    return asm.finish()


def _assemble_line(asm: Asm, line: str) -> None:
    if line.startswith(".word") or line.startswith(".byte"):
        _data_directive(asm, line)
        return
    match = re.match(r"^(\w+):\s*(.*)$", line)
    if match:
        asm.label(match.group(1))
        line = match.group(2).strip()
        if not line:
            return
    mnemonic, _, rest = line.partition(" ")
    operands = _split_operands(rest)
    _dispatch(asm, mnemonic.lower(), operands, line)


def _data_directive(asm: Asm, line: str) -> None:
    kind, _, rest = line.partition(" ")
    addr_part, _, values_part = rest.partition(":")
    addr = _int(addr_part.strip())
    values = [_int(tok.strip()) for tok in values_part.split(",") if
              tok.strip()]
    if kind == ".word":
        asm.data_words(addr, values)
    else:
        asm.data(addr, bytes(val & 0xFF for val in values))


def _split_operands(rest: str) -> List[str]:
    """Split on commas, keeping bracketed memory operands together."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def _int(token: str) -> int:
    token = token.lstrip("#")
    return int(token, 0)


def _reg(token: str) -> Reg:
    token = token.strip().lower()
    if re.fullmatch(r"r\d+", token):
        return r(int(token[1:]))
    if re.fullmatch(r"v\d+", token):
        return v(int(token[1:]))
    raise ValueError(f"not a register: {token!r}")


def _op2(token: str):
    token = token.strip()
    if token.startswith("#"):
        return _int(token)
    return _reg(token)


def _flex(operands: List[str]) -> Tuple[List[str], ShiftOp, int]:
    """Peel a trailing flexible-shift operand (``lsr #3``) if present."""
    if operands and operands[-1].split()[0].lower() in _SHIFT_NAMES:
        shift_tok = operands[-1].split()
        return (operands[:-1], _SHIFT_NAMES[shift_tok[0].lower()],
                _int(shift_tok[1]))
    return operands, ShiftOp.NONE, 0


def _mem_operand(token: str):
    """Parse ``[base]`` / ``[base, #off]`` / ``[base, idx, #off]``."""
    inner = token.strip()
    if not (inner.startswith("[") and inner.endswith("]")):
        raise ValueError(f"expected memory operand, got {token!r}")
    parts = [p.strip() for p in inner[1:-1].split(",")]
    base = _reg(parts[0])
    index: Optional[Reg] = None
    offset = 0
    for part in parts[1:]:
        if part.startswith("#"):
            offset = _int(part)
        else:
            index = _reg(part)
    return base, index, offset


def _dispatch(asm: Asm, mnemonic: str, operands: List[str],
              line: str) -> None:
    set_flags = False
    dtype = None

    if "." in mnemonic:   # SIMD type suffix, e.g. vadd.i16
        mnemonic, _, suffix = mnemonic.partition(".")
        dtype = SimdType(int(suffix.lstrip("i")))

    base = mnemonic
    if (base.endswith("s") and base[:-1] in
            set(_DP3) | set(_DP2) | set(_SHIFT3)):
        base = base[:-1]
        set_flags = True

    if base in _DP3:
        ops, shift, amount = _flex(operands)
        asm._dp(_DP3[base], _reg(ops[0]), _reg(ops[1]), _op2(ops[2]),
                shift, amount, set_flags)
    elif base in _DP2:
        ops, shift, amount = _flex(operands)
        asm._dp(_DP2[base], _reg(ops[0]), None, _op2(ops[1]), shift,
                amount, set_flags)
    elif base in _CMP2:
        ops, shift, amount = _flex(operands)
        op = _CMP2[base]
        asm._dp(op, None, _reg(ops[0]), _op2(ops[1]), shift, amount,
                True)
    elif base in _SHIFT3:
        asm._shift(_SHIFT3[base], _reg(operands[0]), _reg(operands[1]),
                   _op2(operands[2]), set_flags)
    elif base == "rrx":
        asm.rrx(_reg(operands[0]), _reg(operands[1]), s=set_flags)
    elif base in _MUL3:
        getattr(asm, {"mul": "mul", "sdiv": "sdiv", "udiv": "udiv"}[base])(
            _reg(operands[0]), _reg(operands[1]), _reg(operands[2]))
    elif base == "mla":
        asm.mla(_reg(operands[0]), _reg(operands[1]), _reg(operands[2]),
                _reg(operands[3]))
    elif base in _FP3:
        getattr(asm, base)(_reg(operands[0]), _reg(operands[1]),
                           _reg(operands[2]))
    elif base in ("ldr", "ldrb"):
        mem_base, index, offset = _mem_operand(operands[1])
        getattr(asm, base)(_reg(operands[0]), mem_base, offset,
                           index=index)
    elif base in ("str", "strb"):
        method = "str_" if base == "str" else "strb"
        mem_base, index, offset = _mem_operand(operands[1])
        getattr(asm, method)(_reg(operands[0]), mem_base, offset,
                             index=index)
    elif base in ("vld1", "vst1"):
        mem_base, index, offset = _mem_operand(operands[1])
        getattr(asm, base)(_reg(operands[0]), mem_base, offset,
                           index=index)
    elif base == "vdup":
        asm.vdup(_reg(operands[0]), _reg(operands[1]),
                 dtype or SimdType.I32)
    elif base == "vmov":
        asm.vmov(_reg(operands[0]), _reg(operands[1]))
    elif base in _VEC3:
        method = getattr(asm, _VEC3[base])
        args = [_reg(tok) for tok in operands]
        if base in ("vand", "vorr", "veor"):
            method(*args, dtype=dtype or SimdType.I32)
        else:
            if dtype is None:
                raise ValueError(f"{base} needs a .iN type suffix")
            method(*args, dtype)
    elif base == "b" or (base.startswith("b")
                         and base[1:] in _COND_SUFFIXES):
        cond = _COND_SUFFIXES.get(base[1:], Cond.AL)
        asm.b(operands[0], cond=cond)
    elif base == "bl":
        asm.bl(operands[0], link=_reg(operands[1]))
    elif base == "halt":
        asm.halt()
    elif base == "nop":
        asm.nop()
    else:
        raise ValueError(f"unknown mnemonic {mnemonic!r}")
