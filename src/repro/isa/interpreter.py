"""Reference interpreter: functional execution of whole programs.

The interpreter is the architectural golden model.  The cycle-level
pipelines (baseline and ReDSOC) must commit exactly the state this
interpreter produces — slack recycling is timing-only and must never
change results.  It is also used by workload unit tests to check kernel
correctness and by the width-predictor to gather ground-truth widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .program import Program
from .registers import Reg, RegisterFile
from .semantics import Memory, execute


@dataclass
class InterpResult:
    """Outcome of an interpreter run."""

    instructions: int
    halted: bool
    regs: RegisterFile
    mem: Memory
    #: dynamic trace of (pc, op_width) pairs when tracing is enabled
    trace: List[tuple] = field(default_factory=list)

    def arch_state(self) -> Dict:
        """Architectural state snapshot for equivalence checks."""
        return {"regs": self.regs.snapshot(), "mem": self.mem.snapshot()}


class Interpreter:
    """Runs a :class:`~repro.isa.program.Program` functionally."""

    def __init__(self, program: Program, *,
                 init_regs: Optional[Dict[Reg, int]] = None,
                 max_instructions: int = 50_000_000) -> None:
        program.validate()
        self.program = program
        self.max_instructions = max_instructions
        self.regs = RegisterFile()
        self.mem = program.build_memory()
        for reg, value in (init_regs or {}).items():
            self.regs.write(reg, value)

    def run(self, *, trace_widths: bool = False) -> InterpResult:
        """Execute to HALT (or the instruction cap); returns the result."""
        pc = self.program.entry
        instrs = self.program.instructions
        count = 0
        halted = False
        trace: List[tuple] = []
        while count < self.max_instructions:
            if not 0 <= pc < len(instrs):
                raise RuntimeError(
                    f"pc {pc} fell off program {self.program.name!r}")
            instr = instrs[pc]
            result = execute(instr, self.regs, self.mem, pc)
            count += 1
            for reg, value in result.writes.items():
                self.regs.write(reg, value)
            if result.is_store:
                self.mem.write(result.mem_addr, result.store_value,
                               result.mem_size)
            if trace_widths:
                trace.append((pc, result.op_width))
            if result.halted:
                halted = True
                break
            pc = result.next_pc
        return InterpResult(instructions=count, halted=halted,
                            regs=self.regs, mem=self.mem, trace=trace)


def run_program(program: Program, *,
                init_regs: Optional[Dict[Reg, int]] = None,
                max_instructions: int = 50_000_000) -> InterpResult:
    """Convenience wrapper: interpret *program* to completion."""
    interp = Interpreter(program, init_regs=init_regs,
                         max_instructions=max_instructions)
    return interp.run()
