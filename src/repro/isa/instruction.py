"""Instruction representation for the micro-op ISA.

An :class:`Instruction` is a fully-decoded micro-op: the simulator never
deals with binary encodings.  The operand structure follows the ARM
data-processing template:

``op rd, rn, <op2>`` where ``<op2>`` is either an immediate or a register
``rm`` optionally modified by a *flexible shift* (``rm, LSR #3``).  The
flexible shift is what produces the long ``ADD-LSR`` / ``SUB-ROR``
critical paths at the right edge of Fig. 1.

Memory operations use ``[rn + rm*scale + imm]`` addressing; SIMD
operations carry a :class:`~repro.isa.opcodes.SimdType` element type
(the Type-Slack source).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from .opcodes import (
    CARRY_IN_OPS,
    FLAG_ONLY_OPS,
    Cond,
    OpClass,
    Opcode,
    ShiftOp,
    SimdType,
    op_class,
)
from .registers import FLAGS, Reg


@dataclass
class Instruction:
    """One fully-decoded micro-op.

    Only the fields relevant to a given opcode are populated; the
    remainder stay ``None``.  ``sources()`` / ``dests()`` derive the
    dataflow edges the renamer needs.
    """

    op: Opcode
    rd: Optional[Reg] = None        # destination register
    rn: Optional[Reg] = None        # first source / memory base
    rm: Optional[Reg] = None        # second source / memory index
    ra: Optional[Reg] = None        # third source (MLA accumulate)
    rs: Optional[Reg] = None        # store-data source
    imm: Optional[int] = None       # immediate op2 / memory offset
    shift: ShiftOp = ShiftOp.NONE   # flexible second-operand shift
    shift_amt: int = 0
    set_flags: bool = False         # ARM "S" suffix
    cond: Cond = Cond.AL            # branch condition
    target: Union[int, str, None] = None  # branch target (pc or label)
    dtype: Optional["SimdType"] = None  # SimdType for SIMD ops
    scale: int = 1                  # memory index scale (bytes)
    pc: int = -1                    # program index, assigned at assembly

    label_refs: List[str] = field(default_factory=list, repr=False)

    @property
    def cls(self) -> OpClass:
        # memoised: the timing pipeline reads this per dynamic uop, and
        # the opcode never changes after assembly
        cached = self.__dict__.get("_cls")
        if cached is None:
            cached = self.__dict__["_cls"] = op_class(self.op)
        return cached

    def sources(self) -> List[Reg]:
        """All architectural registers this instruction reads."""
        srcs = [reg for reg in (self.rn, self.rm, self.ra, self.rs)
                if reg is not None]
        if self.op in CARRY_IN_OPS:
            srcs.append(FLAGS)
        if self.op is Opcode.B and self.cond is not Cond.AL:
            srcs.append(FLAGS)
        return srcs

    def dests(self) -> List[Reg]:
        """All architectural registers this instruction writes."""
        dsts: List[Reg] = []
        if self.rd is not None and self.op not in FLAG_ONLY_OPS:
            dsts.append(self.rd)
        if self.set_flags or self.op in FLAG_ONLY_OPS:
            dsts.append(FLAGS)
        return dsts

    def is_branch(self) -> bool:
        return self.cls is OpClass.BRANCH

    def is_mem(self) -> bool:
        return self.cls in (OpClass.LOAD, OpClass.STORE)

    def has_flexible_shift(self) -> bool:
        """True when the second operand carries an inline shift.

        Standalone shift opcodes (LSL/LSR/...) do *not* count — their
        shift is the operation itself, not a flexible-operand modifier.
        """
        return self.shift is not ShiftOp.NONE

    def __repr__(self) -> str:  # compact, assembly-like
        parts = [self.op.name.lower() + ("s" if self.set_flags else "")]
        if self.op is Opcode.B and self.cond is not Cond.AL:
            parts[0] = "b" + self.cond.value
        if self.dtype is not None:
            parts[0] += f".i{self.dtype.value}"
        ops = []
        for reg in (self.rd, self.rs, self.rn, self.rm, self.ra):
            if reg is not None:
                ops.append(repr(reg))
        if self.imm is not None:
            ops.append(f"#{self.imm}")
        if self.shift is not ShiftOp.NONE:
            ops.append(f"{self.shift.value} #{self.shift_amt}")
        if self.target is not None:
            ops.append(str(self.target))
        return parts[0] + " " + ", ".join(ops)
