"""JSON-safe (de)serialisation of instructions and programs.

The verification subsystem (:mod:`repro.verify`) persists failing fuzz
programs as replayable artifacts under ``.redsoc-verify/``; campaigns
and bug reports need the *exact* micro-op stream back, including fields
the text assembler cannot express (index scales, resolved branch
targets, link registers).  These helpers round-trip every
:class:`~repro.isa.instruction.Instruction` field through plain JSON
types, so ``program_from_dict(program_to_dict(p))`` reproduces the
identical dynamic trace.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, Optional

from .instruction import Instruction
from .opcodes import Cond, Opcode, ShiftOp, SimdType
from .program import Program
from .registers import FLAGS, Reg, r, v


def reg_to_str(reg: Optional[Reg]) -> Optional[str]:
    """``r3`` / ``v1`` / ``flags`` — the assembly spelling."""
    if reg is None:
        return None
    return repr(reg)


def reg_from_str(token: Optional[str]) -> Optional[Reg]:
    if token is None:
        return None
    if token == "flags":
        return FLAGS
    cls, index = token[0], int(token[1:])
    if cls == "r":
        return r(index)
    if cls == "v":
        return v(index)
    raise ValueError(f"not a register token: {token!r}")


def instruction_to_dict(instr: Instruction) -> Dict[str, Any]:
    """One instruction as a JSON-safe dict (defaults omitted)."""
    d: Dict[str, Any] = {"op": instr.op.name}
    for field in ("rd", "rn", "rm", "ra", "rs"):
        reg = getattr(instr, field)
        if reg is not None:
            d[field] = reg_to_str(reg)
    if instr.imm is not None:
        d["imm"] = instr.imm
    if instr.shift is not ShiftOp.NONE:
        d["shift"] = instr.shift.value
        d["shift_amt"] = instr.shift_amt
    if instr.set_flags:
        d["s"] = True
    if instr.cond is not Cond.AL:
        d["cond"] = instr.cond.value
    if instr.target is not None:
        d["target"] = instr.target
    if instr.dtype is not None:
        d["dtype"] = instr.dtype.value
    if instr.scale != 1:
        d["scale"] = instr.scale
    return d


def instruction_from_dict(d: Dict[str, Any]) -> Instruction:
    return Instruction(
        op=Opcode[d["op"]],
        rd=reg_from_str(d.get("rd")),
        rn=reg_from_str(d.get("rn")),
        rm=reg_from_str(d.get("rm")),
        ra=reg_from_str(d.get("ra")),
        rs=reg_from_str(d.get("rs")),
        imm=d.get("imm"),
        shift=ShiftOp(d.get("shift", ShiftOp.NONE.value)),
        shift_amt=d.get("shift_amt", 0),
        set_flags=d.get("s", False),
        cond=Cond(d.get("cond", Cond.AL.value)),
        target=d.get("target"),
        dtype=SimdType(d["dtype"]) if "dtype" in d else None,
        scale=d.get("scale", 1),
    )


def program_to_dict(program: Program) -> Dict[str, Any]:
    """A whole program (instructions + labels + data image) as JSON."""
    return {
        "name": program.name,
        "entry": program.entry,
        "instructions": [instruction_to_dict(i)
                         for i in program.instructions],
        "labels": dict(program.labels),
        "data": [[addr, base64.b64encode(blob).decode("ascii")]
                 for addr, blob in program.data],
    }


def program_from_dict(d: Dict[str, Any]) -> Program:
    program = Program(
        name=d["name"],
        instructions=[instruction_from_dict(i)
                      for i in d["instructions"]],
        labels={k: int(val) for k, val in d.get("labels", {}).items()},
        data=[(addr, base64.b64decode(blob))
              for addr, blob in d.get("data", [])],
        entry=d.get("entry", 0),
    )
    for pc, instr in enumerate(program.instructions):
        instr.pc = pc
    program.resolve_labels()
    program.validate()
    return program


__all__ = [
    "instruction_from_dict", "instruction_to_dict", "program_from_dict",
    "program_to_dict", "reg_from_str", "reg_to_str",
]
