"""ARM-flavoured micro-op ISA: opcodes, semantics, assembler, interpreter.

This subpackage is the instruction-set substrate the rest of the
reproduction builds on.  Public surface:

* :class:`~repro.isa.opcodes.Opcode`, :class:`~repro.isa.opcodes.OpClass`,
  :class:`~repro.isa.opcodes.ShiftOp`, :class:`~repro.isa.opcodes.Cond`,
  :class:`~repro.isa.opcodes.SimdType`
* :func:`~repro.isa.registers.r`, :func:`~repro.isa.registers.v`,
  :data:`~repro.isa.registers.FLAGS`
* :class:`~repro.isa.assembler.Asm` → :class:`~repro.isa.program.Program`
* :func:`~repro.isa.interpreter.run_program` (golden model)
"""

from .assembler import Asm
from .instruction import Instruction
from .interpreter import Interpreter, InterpResult, run_program
from .opcodes import (
    Cond,
    OpClass,
    Opcode,
    ShiftOp,
    SimdType,
    is_single_cycle_alu,
    is_transparent_capable,
    op_class,
)
from .program import Program
from .registers import FLAGS, Flags, Reg, RegClass, RegisterFile, r, v
from .serialize import (
    instruction_from_dict,
    instruction_to_dict,
    program_from_dict,
    program_to_dict,
)
from .textasm import AssemblyError, assemble_text
from .semantics import (
    ExecResult,
    Memory,
    effective_width,
    execute,
    width_bucket,
)

__all__ = [
    "Asm", "Cond", "ExecResult", "FLAGS", "Flags", "Instruction",
    "InterpResult", "Interpreter", "Memory", "OpClass", "Opcode",
    "Program", "Reg", "RegClass", "RegisterFile", "ShiftOp", "SimdType",
    "AssemblyError", "assemble_text",
    "effective_width", "execute", "instruction_from_dict",
    "instruction_to_dict", "is_single_cycle_alu",
    "is_transparent_capable", "op_class", "program_from_dict",
    "program_to_dict", "r", "run_program", "v", "width_bucket",
]
