"""Architectural register specification.

The micro-ISA has:

* 32 scalar integer registers ``r0``–``r31`` (32-bit),
* 32 SIMD vector registers ``v0``–``v31`` (128-bit, held as Python ints),
* one flags register (NZCV) modelled as an architectural register so the
  renamer can track flag dependencies like any other source/destination.

Registers are addressed by small integers in three disjoint namespaces;
:class:`Reg` pairs the namespace with the index so a register value can be
used as a dict key throughout the pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_INT_REGS = 32
NUM_VEC_REGS = 32

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1
VEC_BITS = 128
VEC_MASK = (1 << VEC_BITS) - 1


class RegClass(enum.Enum):
    INT = "r"
    VEC = "v"
    FLAGS = "f"


@dataclass(frozen=True)
class Reg:
    """An architectural register: namespace + index."""

    cls: RegClass
    index: int

    def __post_init__(self) -> None:
        # precomputed hash: Reg keys the RAT and register file on the
        # rename hot path, and the generated dataclass hash re-hashes
        # the RegClass member (a Python-level call) on every dict probe
        object.__setattr__(self, "_hash",
                           hash((self.cls.value, self.index)))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.cls is RegClass.FLAGS:
            return "flags"
        return f"{self.cls.value}{self.index}"


def r(index: int) -> Reg:
    """Scalar integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return Reg(RegClass.INT, index)


def v(index: int) -> Reg:
    """SIMD vector register ``v<index>``."""
    if not 0 <= index < NUM_VEC_REGS:
        raise ValueError(f"vector register index out of range: {index}")
    return Reg(RegClass.VEC, index)


#: The single architectural flags (NZCV) register.
FLAGS = Reg(RegClass.FLAGS, 0)


@dataclass
class Flags:
    """NZCV condition flags."""

    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False

    def pack(self) -> int:
        """Encode as a 4-bit integer (N:3, Z:2, C:1, V:0)."""
        return (self.n << 3) | (self.z << 2) | (self.c << 1) | int(self.v)

    @classmethod
    def unpack(cls, value: int) -> "Flags":
        """Decode from :meth:`pack`'s representation."""
        return cls(bool(value & 8), bool(value & 4), bool(value & 2),
                   bool(value & 1))


class RegisterFile:
    """Architectural register state (used by the functional executor).

    Integer registers hold 32-bit unsigned words; vector registers hold
    128-bit unsigned values; the flags register holds a packed NZCV
    nibble.  All reads/writes go through :class:`Reg` keys.
    """

    def __init__(self) -> None:
        self._int = [0] * NUM_INT_REGS
        self._vec = [0] * NUM_VEC_REGS
        self._flags = 0

    def read(self, reg: Reg) -> int:
        if reg.cls is RegClass.INT:
            return self._int[reg.index]
        if reg.cls is RegClass.VEC:
            return self._vec[reg.index]
        return self._flags

    def write(self, reg: Reg, value: int) -> None:
        if reg.cls is RegClass.INT:
            self._int[reg.index] = value & WORD_MASK
        elif reg.cls is RegClass.VEC:
            self._vec[reg.index] = value & VEC_MASK
        else:
            self._flags = value & 0xF

    def flags(self) -> Flags:
        return Flags.unpack(self._flags)

    def set_flags(self, flags: Flags) -> None:
        self._flags = flags.pack()

    def snapshot(self) -> dict:
        """Copy of the full architectural state (for equivalence tests)."""
        return {"int": list(self._int), "vec": list(self._vec),
                "flags": self._flags}
