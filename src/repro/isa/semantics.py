"""Functional (value-accurate) execution of every opcode.

The simulator executes real values so that

* the data-width predictor (Sec. II-B) is trained and validated against
  *actual* operand widths, and aggressive mispredictions trigger real
  replays;
* baseline and ReDSOC runs can be checked for architectural-state
  equivalence (slack recycling must never change results).

The central entry point is :func:`execute`, which evaluates one
instruction against a :class:`~repro.isa.registers.RegisterFile` and a
:class:`Memory` and returns an :class:`ExecResult` describing register
writes, memory behaviour, control flow and the observed effective operand
width.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .instruction import Instruction
from .opcodes import Cond, OpClass, Opcode, ShiftOp, SimdType
from .registers import FLAGS, Flags, Reg, RegisterFile, WORD_BITS, WORD_MASK


class Memory:
    """Sparse byte-addressable memory.

    Unwritten bytes read as zero.  Word accesses are little-endian.
    """

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def read_byte(self, addr: int) -> int:
        return self._bytes.get(addr, 0)

    def write_byte(self, addr: int, value: int) -> None:
        self._bytes[addr] = value & 0xFF

    def read(self, addr: int, size: int) -> int:
        """Read *size* bytes at *addr*, little-endian."""
        value = 0
        for i in range(size):
            value |= self._bytes.get(addr + i, 0) << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int) -> None:
        """Write *size* bytes of *value* at *addr*, little-endian."""
        for i in range(size):
            self._bytes[addr + i] = (value >> (8 * i)) & 0xFF

    def load_block(self, addr: int, data: bytes) -> None:
        """Bulk-initialise memory (used by program loaders)."""
        for i, byte in enumerate(data):
            self._bytes[addr + i] = byte

    def read_block(self, addr: int, size: int) -> bytes:
        return bytes(self._bytes.get(addr + i, 0) for i in range(size))

    def snapshot(self) -> Dict[int, int]:
        return dict(self._bytes)


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    """Interpret *value* as a two's-complement signed integer."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def effective_width(value: int, bits: int = WORD_BITS) -> int:
    """Bits needed to represent *value* in two's complement.

    Narrow-width operands — many leading zeros *or* leading ones
    (sign-extension) — are the Width-Slack source (Sec. II-A); Loh's
    predictor treats both the same way.  Returns at least 1.
    """
    if bits == WORD_BITS:
        value &= WORD_MASK
        if value & 0x80000000:
            # two's-complement negative: ~signed == WORD_MASK ^ value
            value ^= WORD_MASK
        return max(1, value.bit_length() + 1)
    signed = to_signed(value, bits)
    if signed < 0:
        signed = ~signed
    return max(1, signed.bit_length() + 1)


def width_bucket(width: int) -> int:
    """Quantise an effective width into the 4 predictor classes.

    Returns one of 8, 16, 24, 32 — the four prediction outputs the paper
    uses ("4 possible prediction outputs indicating high to low
    data-width").
    """
    for bucket in (8, 16, 24):
        if width <= bucket:
            return bucket
    return 32


class ExecResult:
    """Outcome of functionally executing one instruction.

    A plain ``__slots__`` class (not a dataclass): one is built per
    dynamic instruction during trace generation, so construction cost
    is on the functional-simulation hot path.
    """

    __slots__ = ("next_pc", "writes", "taken", "mem_addr", "mem_size",
                 "is_store", "store_value", "halted", "op_width")

    def __init__(self, next_pc: int) -> None:
        self.next_pc = next_pc
        self.writes: Dict[Reg, int] = {}
        self.taken = False
        self.mem_addr: Optional[int] = None
        self.mem_size = 0
        self.is_store = False
        self.store_value = 0
        self.halted = False
        #: max effective width over integer source operands (Width-Slack)
        self.op_width = WORD_BITS

    def __repr__(self) -> str:
        return (f"ExecResult(next_pc={self.next_pc}, writes={self.writes}, "
                f"taken={self.taken}, mem_addr={self.mem_addr}, "
                f"mem_size={self.mem_size}, is_store={self.is_store}, "
                f"store_value={self.store_value}, halted={self.halted}, "
                f"op_width={self.op_width})")


def _apply_shift(value: int, shift: ShiftOp, amount: int,
                 carry_in: bool) -> Tuple[int, bool]:
    """Evaluate a (flexible or standalone) shift; returns (result, carry).

    Carry is the last bit shifted out (ARM shifter carry-out); for a zero
    amount the incoming carry is preserved.
    """
    value &= WORD_MASK
    amount &= 0xFF
    if shift is ShiftOp.NONE or (amount == 0 and shift is not ShiftOp.RRX):
        return value, carry_in
    if shift is ShiftOp.LSL:
        if amount >= WORD_BITS + 1:
            return 0, False
        carry = bool((value << amount) & (1 << WORD_BITS)) if amount else carry_in
        return (value << amount) & WORD_MASK, carry
    if shift is ShiftOp.LSR:
        if amount > WORD_BITS:
            return 0, False
        carry = bool(value & (1 << (amount - 1))) if amount <= WORD_BITS else False
        return (value >> amount) & WORD_MASK, carry
    if shift is ShiftOp.ASR:
        amount = min(amount, WORD_BITS)
        signed = to_signed(value)
        carry = bool((signed >> (amount - 1)) & 1)
        return (signed >> amount) & WORD_MASK, carry
    if shift is ShiftOp.ROR:
        amount %= WORD_BITS
        if amount == 0:
            return value, bool(value >> (WORD_BITS - 1))
        result = ((value >> amount) | (value << (WORD_BITS - amount))) & WORD_MASK
        return result, bool(result >> (WORD_BITS - 1))
    # RRX: rotate right through carry by one
    result = ((value >> 1) | (int(carry_in) << (WORD_BITS - 1))) & WORD_MASK
    return result, bool(value & 1)


def _add_with_carry(a: int, b: int, carry: int) -> Tuple[int, Flags]:
    """32-bit add producing NZCV flags (ARM semantics)."""
    unsigned = (a & WORD_MASK) + (b & WORD_MASK) + carry
    result = unsigned & WORD_MASK
    signed = to_signed(a) + to_signed(b) + carry
    flags = Flags(
        n=bool(result >> (WORD_BITS - 1)),
        z=result == 0,
        c=unsigned > WORD_MASK,
        v=not (-(1 << (WORD_BITS - 1)) <= signed < (1 << (WORD_BITS - 1))),
    )
    return result, flags


def _logical_flags(result: int, carry: bool, old: Flags) -> Flags:
    return Flags(n=bool(result >> (WORD_BITS - 1)), z=result == 0,
                 c=carry, v=old.v)


def cond_holds(cond: Cond, flags: Flags) -> bool:
    """Evaluate a branch condition against NZCV flags."""
    if cond is Cond.AL:
        return True
    table = {
        Cond.EQ: flags.z,
        Cond.NE: not flags.z,
        Cond.LT: flags.n != flags.v,
        Cond.GE: flags.n == flags.v,
        Cond.GT: (not flags.z) and flags.n == flags.v,
        Cond.LE: flags.z or flags.n != flags.v,
        Cond.CS: flags.c,
        Cond.CC: not flags.c,
        Cond.MI: flags.n,
        Cond.PL: not flags.n,
    }
    return table[cond]


# --- SIMD lane helpers -------------------------------------------------

def _lanes(value: int, dtype: SimdType) -> list:
    width = dtype.value
    count = 128 // width
    mask = (1 << width) - 1
    return [(value >> (i * width)) & mask for i in range(count)]


def _pack_lanes(lanes: list, dtype: SimdType) -> int:
    width = dtype.value
    mask = (1 << width) - 1
    value = 0
    for i, lane in enumerate(lanes):
        value |= (lane & mask) << (i * width)
    return value


def _simd_lanewise(op: Opcode, a: int, b: int, acc: int,
                   dtype: SimdType) -> int:
    width = dtype.value
    mask = (1 << width) - 1
    la, lb = _lanes(a, dtype), _lanes(b, dtype)
    lacc = _lanes(acc, dtype)
    out = []
    for x, y, z in zip(la, lb, lacc):
        if op is Opcode.VADD:
            out.append((x + y) & mask)
        elif op is Opcode.VSUB:
            out.append((x - y) & mask)
        elif op is Opcode.VMUL:
            out.append((x * y) & mask)
        elif op is Opcode.VMLA:
            out.append((z + x * y) & mask)
        elif op is Opcode.VMAX:
            out.append(max(to_signed(x, width), to_signed(y, width)) & mask)
        elif op is Opcode.VMIN:
            out.append(min(to_signed(x, width), to_signed(y, width)) & mask)
        elif op is Opcode.VAND:
            out.append(x & y)
        elif op is Opcode.VORR:
            out.append(x | y)
        elif op is Opcode.VEOR:
            out.append(x ^ y)
        elif op is Opcode.VSHL:
            out.append((x << (y % width)) & mask)
        elif op is Opcode.VSHR:
            out.append((to_signed(x, width) >> (y % width)) & mask)
        else:
            raise ValueError(f"not a lanewise SIMD op: {op}")
    return _pack_lanes(out, dtype)


# --- main dispatch ------------------------------------------------------

#: lanewise SIMD opcodes routed to :func:`_execute_simd` (every V-prefix
#: op except the vector load/store pair)
_SIMD_EXEC_OPS = frozenset(
    op for op in Opcode
    if op.name.startswith("V") and op not in (Opcode.VLD1, Opcode.VST1))


def execute(instr: Instruction, regs: RegisterFile, mem: Memory,
            pc: int) -> ExecResult:
    """Functionally execute *instr*; returns the :class:`ExecResult`.

    Does **not** mutate *regs* or *mem* — callers apply ``writes`` and
    stores themselves, which lets the pipeline defer stores to commit.
    """
    op = instr.op
    res = ExecResult(next_pc=pc + 1)

    if op is Opcode.HALT:
        res.halted = True
        return res
    if op is Opcode.NOP:
        return res

    if op in _SIMD_EXEC_OPS:
        return _execute_simd(instr, regs, res)
    cls = instr.cls
    if cls is OpClass.LOAD or cls is OpClass.STORE:
        return _execute_mem(instr, regs, mem, res)
    if cls is OpClass.BRANCH:
        return _execute_branch(instr, regs, pc, res)
    if op in (Opcode.MUL, Opcode.MLA, Opcode.SDIV, Opcode.UDIV):
        return _execute_multicycle(instr, regs, res)
    if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
        return _execute_fp(instr, regs, res)
    return _execute_alu(instr, regs, res, regs.flags())


def _operand2(instr: Instruction, regs: RegisterFile,
              carry_in: bool) -> Tuple[int, bool, int]:
    """Evaluate the flexible second operand.

    Returns ``(value, shifter_carry, raw_width)`` where raw_width is the
    effective width of the *pre-shift* operand (width slack is estimated
    on raw inputs at the FU ports).
    """
    if instr.rm is not None:
        raw = regs.read(instr.rm)
    else:
        raw = (instr.imm or 0) & WORD_MASK
    value, carry = _apply_shift(raw, instr.shift, instr.shift_amt, carry_in)
    return value, carry, effective_width(raw)


#: standalone shift opcode → the barrel-shifter operation it performs
_SHIFT_OP_MAP = {Opcode.LSL: ShiftOp.LSL, Opcode.LSR: ShiftOp.LSR,
                 Opcode.ASR: ShiftOp.ASR, Opcode.ROR: ShiftOp.ROR,
                 Opcode.RRX: ShiftOp.RRX}


def _execute_alu(instr: Instruction, regs: RegisterFile, res: ExecResult,
                 old_flags: Flags) -> ExecResult:
    op = instr.op
    rn_val = regs.read(instr.rn) if instr.rn is not None else 0
    carry_in = old_flags.c

    if op in (Opcode.LSL, Opcode.LSR, Opcode.ASR, Opcode.ROR, Opcode.RRX):
        amount = (regs.read(instr.rm) & 0xFF if instr.rm is not None
                  else (instr.imm or 0))
        result, carry = _apply_shift(rn_val, _SHIFT_OP_MAP[op], amount,
                                     carry_in)
        res.op_width = effective_width(rn_val)
        res.writes[instr.rd] = result
        if instr.set_flags:
            res.writes[FLAGS] = _logical_flags(result, carry, old_flags).pack()
        return res

    op2, shifter_carry, op2_width = _operand2(instr, regs, carry_in)
    res.op_width = max(
        effective_width(rn_val) if instr.rn is not None else 1, op2_width)

    # logical group
    if op is Opcode.AND or op is Opcode.TST:
        result = rn_val & op2
    elif op is Opcode.ORR:
        result = rn_val | op2
    elif op is Opcode.EOR or op is Opcode.TEQ:
        result = rn_val ^ op2
    elif op is Opcode.BIC:
        result = rn_val & ~op2
    elif op is Opcode.MVN:
        result = ~op2
    elif op is Opcode.MOV:
        result = op2
    else:
        result = None
    if result is not None:
        result &= WORD_MASK
        if op is not Opcode.TST and op is not Opcode.TEQ:
            res.writes[instr.rd] = result
        if instr.set_flags or op is Opcode.TST or op is Opcode.TEQ:
            res.writes[FLAGS] = _logical_flags(
                result, shifter_carry, old_flags).pack()
        return res

    # arithmetic group
    if op is Opcode.ADD or op is Opcode.CMN:
        a, b, cin = rn_val, op2, 0
    elif op is Opcode.SUB or op is Opcode.CMP:
        a, b, cin = rn_val, ~op2 & WORD_MASK, 1
    elif op is Opcode.RSB:
        a, b, cin = op2, ~rn_val & WORD_MASK, 1
    elif op is Opcode.ADC:
        a, b, cin = rn_val, op2, int(carry_in)
    elif op is Opcode.SBC:
        a, b, cin = rn_val, ~op2 & WORD_MASK, int(carry_in)
    elif op is Opcode.RSC:
        a, b, cin = op2, ~rn_val & WORD_MASK, int(carry_in)
    else:
        raise KeyError(op)
    result, flags = _add_with_carry(a, b, cin)
    if op is not Opcode.CMP and op is not Opcode.CMN:
        res.writes[instr.rd] = result
    if instr.set_flags or op is Opcode.CMP or op is Opcode.CMN:
        res.writes[FLAGS] = flags.pack()
    return res


def _execute_multicycle(instr: Instruction, regs: RegisterFile,
                        res: ExecResult) -> ExecResult:
    rn_val = regs.read(instr.rn)
    rm_val = regs.read(instr.rm)
    res.op_width = max(effective_width(rn_val), effective_width(rm_val))
    if instr.op is Opcode.MUL:
        result = (rn_val * rm_val) & WORD_MASK
    elif instr.op is Opcode.MLA:
        result = (rn_val * rm_val + regs.read(instr.ra)) & WORD_MASK
    elif instr.op is Opcode.UDIV:
        result = (rn_val // rm_val) & WORD_MASK if rm_val else 0
    else:  # SDIV
        a, b = to_signed(rn_val), to_signed(rm_val)
        result = (int(a / b) if b else 0) & WORD_MASK
    res.writes[instr.rd] = result
    return res


def _execute_fp(instr: Instruction, regs: RegisterFile,
                res: ExecResult) -> ExecResult:
    """FP ops use fixed-point Q16.16 on integer registers.

    This keeps the architectural state integer-only (bit-exact,
    replayable) while still exercising the multi-cycle FP pipeline.
    """
    a = to_signed(regs.read(instr.rn)) / 65536.0
    b = to_signed(regs.read(instr.rm)) / 65536.0
    if instr.op is Opcode.FADD:
        value = a + b
    elif instr.op is Opcode.FSUB:
        value = a - b
    elif instr.op is Opcode.FMUL:
        value = a * b
    else:
        value = a / b if b else 0.0
    res.writes[instr.rd] = int(value * 65536.0) & WORD_MASK
    return res


def _execute_mem(instr: Instruction, regs: RegisterFile, mem: Memory,
                 res: ExecResult) -> ExecResult:
    base = regs.read(instr.rn) if instr.rn is not None else 0
    index = regs.read(instr.rm) * instr.scale if instr.rm is not None else 0
    addr = (base + index + (instr.imm or 0)) & WORD_MASK
    res.mem_addr = addr

    op = instr.op
    if op is Opcode.LDR:
        res.mem_size = 4
        res.writes[instr.rd] = mem.read(addr, 4)
    elif op is Opcode.LDRB:
        res.mem_size = 1
        res.writes[instr.rd] = mem.read(addr, 1)
    elif op is Opcode.VLD1:
        res.mem_size = 16
        res.writes[instr.rd] = mem.read(addr, 16)
    elif op is Opcode.STR:
        res.mem_size, res.is_store = 4, True
        res.store_value = regs.read(instr.rs)
    elif op is Opcode.STRB:
        res.mem_size, res.is_store = 1, True
        res.store_value = regs.read(instr.rs) & 0xFF
    elif op is Opcode.VST1:
        res.mem_size, res.is_store = 16, True
        res.store_value = regs.read(instr.rs)
    if instr.rd is not None and op in (Opcode.LDR, Opcode.LDRB):
        res.op_width = effective_width(res.writes[instr.rd])
    return res


def _execute_branch(instr: Instruction, regs: RegisterFile, pc: int,
                    res: ExecResult) -> ExecResult:
    taken = cond_holds(instr.cond, regs.flags())
    res.taken = taken
    if instr.op is Opcode.BL and instr.rd is not None:
        res.writes[instr.rd] = (pc + 1) & WORD_MASK
    if taken:
        if not isinstance(instr.target, int):
            raise ValueError(f"unresolved branch target: {instr.target!r}")
        res.next_pc = instr.target
    return res


def _execute_simd(instr: Instruction, regs: RegisterFile,
                  res: ExecResult) -> ExecResult:
    op = instr.op
    dtype = instr.dtype or SimdType.I32
    if op is Opcode.VDUP:
        lane = regs.read(instr.rn) & ((1 << dtype.value) - 1)
        res.writes[instr.rd] = _pack_lanes(
            [lane] * (128 // dtype.value), dtype)
        return res
    if op is Opcode.VMOV:
        res.writes[instr.rd] = regs.read(instr.rn)
        return res
    a = regs.read(instr.rn)
    b = regs.read(instr.rm) if instr.rm is not None else 0
    acc = regs.read(instr.ra) if instr.ra is not None else 0
    res.writes[instr.rd] = _simd_lanewise(op, a, b, acc, dtype)
    return res
