"""Programmatic assembler (builder API) for the micro-op ISA.

:class:`Asm` exposes one method per opcode family.  Workload kernels are
written directly against it::

    asm = Asm("bitcount")
    asm.mov(r(2), 0)
    asm.label("loop")
    asm.ands(r(3), r(1), 1)
    asm.add(r(2), r(2), r(3))
    asm.lsr(r(1), r(1), 1)
    asm.cmp(r(1), 0)
    asm.b("loop", cond=Cond.NE)
    asm.halt()
    program = asm.finish()

Second operands accept either a :class:`~repro.isa.registers.Reg` or an
``int`` immediate; flexible-operand shifts are keyword arguments
(``shift=ShiftOp.LSR, shift_amt=3``).
"""

from __future__ import annotations

from typing import Optional, Union

from .instruction import Instruction
from .opcodes import Cond, Opcode, ShiftOp, SimdType
from .program import Program
from .registers import Reg

Op2 = Union[Reg, int]


class Asm:
    """Incremental program builder; one instance per program."""

    def __init__(self, name: str) -> None:
        self._program = Program(name)

    # --- infrastructure -------------------------------------------------

    def emit(self, instr: Instruction) -> Instruction:
        """Append a raw instruction (escape hatch for generators)."""
        instr.pc = len(self._program.instructions)
        self._program.instructions.append(instr)
        return instr

    def label(self, name: str) -> None:
        """Define *name* at the current instruction index."""
        if name in self._program.labels:
            raise ValueError(f"duplicate label {name!r}")
        self._program.labels[name] = len(self._program.instructions)

    def data(self, addr: int, blob: bytes) -> None:
        """Place *blob* into the initial data image at *addr*."""
        self._program.data.append((addr, blob))

    def data_words(self, addr: int, words) -> None:
        """Place 32-bit little-endian *words* at *addr*."""
        blob = b"".join(
            (w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
        self.data(addr, blob)

    def finish(self) -> Program:
        """Resolve labels, validate and return the program."""
        self._program.resolve_labels()
        self._program.validate()
        return self._program

    # --- data processing -------------------------------------------------

    def _dp(self, op: Opcode, rd: Optional[Reg], rn: Optional[Reg],
            op2: Optional[Op2], shift: ShiftOp, shift_amt: int,
            s: bool) -> Instruction:
        rm = op2 if isinstance(op2, Reg) else None
        imm = op2 if isinstance(op2, int) else None
        return self.emit(Instruction(
            op=op, rd=rd, rn=rn, rm=rm, imm=imm, shift=shift,
            shift_amt=shift_amt, set_flags=s))

    def and_(self, rd: Reg, rn: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
             shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.AND, rd, rn, op2, shift, shift_amt, s)

    def ands(self, rd: Reg, rn: Reg, op2: Op2, **kw) -> Instruction:
        return self.and_(rd, rn, op2, s=True, **kw)

    def orr(self, rd: Reg, rn: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.ORR, rd, rn, op2, shift, shift_amt, s)

    def eor(self, rd: Reg, rn: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.EOR, rd, rn, op2, shift, shift_amt, s)

    def bic(self, rd: Reg, rn: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.BIC, rd, rn, op2, shift, shift_amt, s)

    def mvn(self, rd: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.MVN, rd, None, op2, shift, shift_amt, s)

    def mov(self, rd: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.MOV, rd, None, op2, shift, shift_amt, s)

    def tst(self, rn: Reg, op2: Op2, **kw) -> Instruction:
        return self._dp(Opcode.TST, None, rn, op2,
                        kw.get("shift", ShiftOp.NONE),
                        kw.get("shift_amt", 0), True)

    def teq(self, rn: Reg, op2: Op2, **kw) -> Instruction:
        return self._dp(Opcode.TEQ, None, rn, op2,
                        kw.get("shift", ShiftOp.NONE),
                        kw.get("shift_amt", 0), True)

    # --- standalone shifts -----------------------------------------------

    def _shift(self, op: Opcode, rd: Reg, rn: Reg, amount: Op2,
               s: bool) -> Instruction:
        rm = amount if isinstance(amount, Reg) else None
        imm = amount if isinstance(amount, int) else None
        return self.emit(Instruction(op=op, rd=rd, rn=rn, rm=rm, imm=imm,
                                     set_flags=s))

    def lsl(self, rd: Reg, rn: Reg, amount: Op2, *, s: bool = False):
        return self._shift(Opcode.LSL, rd, rn, amount, s)

    def lsr(self, rd: Reg, rn: Reg, amount: Op2, *, s: bool = False):
        return self._shift(Opcode.LSR, rd, rn, amount, s)

    def asr(self, rd: Reg, rn: Reg, amount: Op2, *, s: bool = False):
        return self._shift(Opcode.ASR, rd, rn, amount, s)

    def ror(self, rd: Reg, rn: Reg, amount: Op2, *, s: bool = False):
        return self._shift(Opcode.ROR, rd, rn, amount, s)

    def rrx(self, rd: Reg, rn: Reg, *, s: bool = False):
        return self.emit(Instruction(op=Opcode.RRX, rd=rd, rn=rn,
                                     set_flags=s))

    # --- arithmetic --------------------------------------------------------

    def add(self, rd: Reg, rn: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.ADD, rd, rn, op2, shift, shift_amt, s)

    def adds(self, rd: Reg, rn: Reg, op2: Op2, **kw) -> Instruction:
        return self.add(rd, rn, op2, s=True, **kw)

    def sub(self, rd: Reg, rn: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.SUB, rd, rn, op2, shift, shift_amt, s)

    def subs(self, rd: Reg, rn: Reg, op2: Op2, **kw) -> Instruction:
        return self.sub(rd, rn, op2, s=True, **kw)

    def rsb(self, rd: Reg, rn: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0, s: bool = False) -> Instruction:
        return self._dp(Opcode.RSB, rd, rn, op2, shift, shift_amt, s)

    def adc(self, rd: Reg, rn: Reg, op2: Op2, *, s: bool = False):
        return self._dp(Opcode.ADC, rd, rn, op2, ShiftOp.NONE, 0, s)

    def sbc(self, rd: Reg, rn: Reg, op2: Op2, *, s: bool = False):
        return self._dp(Opcode.SBC, rd, rn, op2, ShiftOp.NONE, 0, s)

    def rsc(self, rd: Reg, rn: Reg, op2: Op2, *, s: bool = False):
        return self._dp(Opcode.RSC, rd, rn, op2, ShiftOp.NONE, 0, s)

    def cmp(self, rn: Reg, op2: Op2, *, shift: ShiftOp = ShiftOp.NONE,
            shift_amt: int = 0) -> Instruction:
        return self._dp(Opcode.CMP, None, rn, op2, shift, shift_amt, True)

    def cmn(self, rn: Reg, op2: Op2) -> Instruction:
        return self._dp(Opcode.CMN, None, rn, op2, ShiftOp.NONE, 0, True)

    # --- multiply / divide -------------------------------------------------

    def mul(self, rd: Reg, rn: Reg, rm: Reg) -> Instruction:
        return self.emit(Instruction(op=Opcode.MUL, rd=rd, rn=rn, rm=rm))

    def mla(self, rd: Reg, rn: Reg, rm: Reg, ra: Reg) -> Instruction:
        return self.emit(Instruction(op=Opcode.MLA, rd=rd, rn=rn, rm=rm,
                                     ra=ra))

    def sdiv(self, rd: Reg, rn: Reg, rm: Reg) -> Instruction:
        return self.emit(Instruction(op=Opcode.SDIV, rd=rd, rn=rn, rm=rm))

    def udiv(self, rd: Reg, rn: Reg, rm: Reg) -> Instruction:
        return self.emit(Instruction(op=Opcode.UDIV, rd=rd, rn=rn, rm=rm))

    # --- floating point (Q16.16 fixed-point representation) ----------------

    def fadd(self, rd: Reg, rn: Reg, rm: Reg) -> Instruction:
        return self.emit(Instruction(op=Opcode.FADD, rd=rd, rn=rn, rm=rm))

    def fsub(self, rd: Reg, rn: Reg, rm: Reg) -> Instruction:
        return self.emit(Instruction(op=Opcode.FSUB, rd=rd, rn=rn, rm=rm))

    def fmul(self, rd: Reg, rn: Reg, rm: Reg) -> Instruction:
        return self.emit(Instruction(op=Opcode.FMUL, rd=rd, rn=rn, rm=rm))

    def fdiv(self, rd: Reg, rn: Reg, rm: Reg) -> Instruction:
        return self.emit(Instruction(op=Opcode.FDIV, rd=rd, rn=rn, rm=rm))

    # --- memory -------------------------------------------------------------

    def ldr(self, rd: Reg, base: Reg, offset: int = 0, *,
            index: Optional[Reg] = None, scale: int = 1) -> Instruction:
        return self.emit(Instruction(op=Opcode.LDR, rd=rd, rn=base,
                                     rm=index, imm=offset, scale=scale))

    def ldrb(self, rd: Reg, base: Reg, offset: int = 0, *,
             index: Optional[Reg] = None, scale: int = 1) -> Instruction:
        return self.emit(Instruction(op=Opcode.LDRB, rd=rd, rn=base,
                                     rm=index, imm=offset, scale=scale))

    def str_(self, rs: Reg, base: Reg, offset: int = 0, *,
             index: Optional[Reg] = None, scale: int = 1) -> Instruction:
        return self.emit(Instruction(op=Opcode.STR, rs=rs, rn=base,
                                     rm=index, imm=offset, scale=scale))

    def strb(self, rs: Reg, base: Reg, offset: int = 0, *,
             index: Optional[Reg] = None, scale: int = 1) -> Instruction:
        return self.emit(Instruction(op=Opcode.STRB, rs=rs, rn=base,
                                     rm=index, imm=offset, scale=scale))

    # --- control flow --------------------------------------------------------

    def b(self, target: Union[str, int], *, cond: Cond = Cond.AL):
        return self.emit(Instruction(op=Opcode.B, cond=cond, target=target))

    def bl(self, target: Union[str, int], link: Reg):
        return self.emit(Instruction(op=Opcode.BL, rd=link, target=target))

    def halt(self) -> Instruction:
        return self.emit(Instruction(op=Opcode.HALT))

    def nop(self) -> Instruction:
        return self.emit(Instruction(op=Opcode.NOP))

    # --- SIMD ------------------------------------------------------------------

    def _v3(self, op: Opcode, vd: Reg, vn: Reg, vm: Reg,
            dtype: SimdType) -> Instruction:
        return self.emit(Instruction(op=op, rd=vd, rn=vn, rm=vm,
                                     dtype=dtype))

    def vadd(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType):
        return self._v3(Opcode.VADD, vd, vn, vm, dtype)

    def vsub(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType):
        return self._v3(Opcode.VSUB, vd, vn, vm, dtype)

    def vmul(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType):
        return self._v3(Opcode.VMUL, vd, vn, vm, dtype)

    def vmla(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType):
        """Multiply-accumulate: ``vd += vn * vm`` lane-wise."""
        return self.emit(Instruction(op=Opcode.VMLA, rd=vd, rn=vn, rm=vm,
                                     ra=vd, dtype=dtype))

    def vmax(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType):
        return self._v3(Opcode.VMAX, vd, vn, vm, dtype)

    def vmin(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType):
        return self._v3(Opcode.VMIN, vd, vn, vm, dtype)

    def vand(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType = SimdType.I32):
        return self._v3(Opcode.VAND, vd, vn, vm, dtype)

    def vorr(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType = SimdType.I32):
        return self._v3(Opcode.VORR, vd, vn, vm, dtype)

    def veor(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType = SimdType.I32):
        return self._v3(Opcode.VEOR, vd, vn, vm, dtype)

    def vshl(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType):
        return self._v3(Opcode.VSHL, vd, vn, vm, dtype)

    def vshr(self, vd: Reg, vn: Reg, vm: Reg, dtype: SimdType):
        return self._v3(Opcode.VSHR, vd, vn, vm, dtype)

    def vdup(self, vd: Reg, rn: Reg, dtype: SimdType):
        return self.emit(Instruction(op=Opcode.VDUP, rd=vd, rn=rn,
                                     dtype=dtype))

    def vmov(self, vd: Reg, vn: Reg):
        return self.emit(Instruction(op=Opcode.VMOV, rd=vd, rn=vn))

    def vld1(self, vd: Reg, base: Reg, offset: int = 0, *,
             index: Optional[Reg] = None, scale: int = 1) -> Instruction:
        return self.emit(Instruction(op=Opcode.VLD1, rd=vd, rn=base,
                                     rm=index, imm=offset, scale=scale))

    def vst1(self, vs: Reg, base: Reg, offset: int = 0, *,
             index: Optional[Reg] = None, scale: int = 1) -> Instruction:
        return self.emit(Instruction(op=Opcode.VST1, rs=vs, rn=base,
                                     rm=index, imm=offset, scale=scale))
