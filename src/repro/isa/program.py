"""Program container: instruction stream + initial data image.

A :class:`Program` owns a list of :class:`~repro.isa.instruction.Instruction`
micro-ops, a label table for branch targets, and the initial contents of
data memory.  Workload generators build programs through
:class:`~repro.isa.assembler.Asm` and the simulator consumes them here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .instruction import Instruction
from .opcodes import Opcode
from .semantics import Memory


@dataclass
class Program:
    """An assembled program ready for simulation."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data: List[Tuple[int, bytes]] = field(default_factory=list)
    entry: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def resolve_labels(self) -> None:
        """Replace symbolic branch targets with instruction indices."""
        for instr in self.instructions:
            if isinstance(instr.target, str):
                if instr.target not in self.labels:
                    raise KeyError(
                        f"undefined label {instr.target!r} in {self.name}")
                instr.target = self.labels[instr.target]

    def validate(self) -> None:
        """Sanity-check the program: labels resolved, PCs in range, HALT.

        Raises ``ValueError`` on any structural problem so workload bugs
        fail fast instead of producing hung simulations.
        """
        if not self.instructions:
            raise ValueError(f"program {self.name!r} is empty")
        n = len(self.instructions)
        for instr in self.instructions:
            if isinstance(instr.target, str):
                raise ValueError(
                    f"unresolved label {instr.target!r}; call resolve_labels()")
            if isinstance(instr.target, int) and not 0 <= instr.target < n:
                raise ValueError(
                    f"branch target {instr.target} out of range [0,{n})")
        if all(i.op is not Opcode.HALT for i in self.instructions):
            raise ValueError(f"program {self.name!r} has no HALT")

    def build_memory(self) -> Memory:
        """Create a fresh :class:`Memory` with the initial data image."""
        mem = Memory()
        for addr, blob in self.data:
            mem.load_block(addr, blob)
        return mem
