"""Opcode definitions for the ARM-flavoured micro-op ISA.

The ISA mirrors the operation mix the paper measures on an ARM-style ALU
(Fig. 1): bitwise-logical operations, moves, shifts/rotates, simple and
carry arithmetic, compare/test operations, and arithmetic with a *flexible
second operand* (a shift applied to operand 2 inside the same ALU pass,
e.g. ``ADD rd, rn, rm, LSR #3``).  On top of the scalar core it adds a
NEON-like sub-word SIMD extension (Type-Slack source, Sec. II), multi-cycle
integer multiply/divide, a small floating-point set, loads/stores and
branches.

Only *single-cycle* integer ops (class ``ALU``) and late-forwarding SIMD
accumulates participate in transparent slack recycling; everything else is
"true synchronous" (Sec. III).
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Coarse execution classes used by the scheduler and FU pool."""

    ALU = "alu"            # single-cycle integer ALU op
    SIMD = "simd"          # NEON-like sub-word op (single-cycle lanes)
    MUL = "mul"            # multi-cycle integer multiply
    DIV = "div"            # multi-cycle integer divide
    FP = "fp"              # multi-cycle floating point
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"
    HALT = "halt"


class ShiftOp(enum.Enum):
    """Shift applied to the flexible second operand (ARM-style)."""

    NONE = "none"
    LSL = "lsl"
    LSR = "lsr"
    ASR = "asr"
    ROR = "ror"
    RRX = "rrx"


class Cond(enum.Enum):
    """Branch conditions evaluated against the NZCV flags."""

    AL = "al"   # always
    EQ = "eq"   # Z
    NE = "ne"   # !Z
    LT = "lt"   # N != V
    GE = "ge"   # N == V
    GT = "gt"   # !Z and N == V
    LE = "le"   # Z or N != V
    CS = "cs"   # C
    CC = "cc"   # !C
    MI = "mi"   # N
    PL = "pl"   # !N


class SimdType(enum.Enum):
    """Sub-word element type of a SIMD operation (Type-Slack source).

    The element width is encoded in the ISA itself (ARM NEON style), so
    type slack is known at decode with certainty (unlike width slack,
    which must be predicted).
    """

    I8 = 8
    I16 = 16
    I32 = 32
    I64 = 64


class Opcode(enum.Enum):
    """Every opcode in the micro-op ISA.

    Scalar data-processing opcodes are named after their ARM equivalents
    so the timing table lines up with Fig. 1 of the paper.
    """

    # --- bitwise logical (lowest computation time) ---
    AND = enum.auto()
    ORR = enum.auto()
    EOR = enum.auto()
    BIC = enum.auto()   # rd = rn & ~op2
    MVN = enum.auto()   # rd = ~op2
    TST = enum.auto()   # flags(rn & op2)
    TEQ = enum.auto()   # flags(rn ^ op2)
    MOV = enum.auto()   # rd = op2

    # --- shifts / rotates (standalone) ---
    LSL = enum.auto()
    LSR = enum.auto()
    ASR = enum.auto()
    ROR = enum.auto()
    RRX = enum.auto()

    # --- arithmetic ---
    ADD = enum.auto()
    SUB = enum.auto()
    RSB = enum.auto()   # rd = op2 - rn
    ADC = enum.auto()   # add with carry   (paper: ADDC)
    SBC = enum.auto()   # sub with carry   (paper: SUBC)
    RSC = enum.auto()   # reverse sub with carry
    CMP = enum.auto()   # flags(rn - op2)
    CMN = enum.auto()   # flags(rn + op2)

    # --- multi-cycle integer ---
    MUL = enum.auto()
    MLA = enum.auto()   # rd = rn * rm + ra
    SDIV = enum.auto()
    UDIV = enum.auto()

    # --- floating point (multi-cycle, true synchronous) ---
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()

    # --- memory ---
    LDR = enum.auto()
    STR = enum.auto()
    LDRB = enum.auto()
    STRB = enum.auto()

    # --- control flow ---
    B = enum.auto()     # conditional/unconditional branch (cond field)
    BL = enum.auto()    # branch and link (rd <- return address)

    # --- SIMD (NEON-like, 128-bit vectors) ---
    VADD = enum.auto()
    VSUB = enum.auto()
    VMUL = enum.auto()
    VMLA = enum.auto()  # multiply-accumulate; accumulate operand late-forwards
    VMAX = enum.auto()
    VMIN = enum.auto()
    VAND = enum.auto()
    VORR = enum.auto()
    VEOR = enum.auto()
    VSHL = enum.auto()
    VSHR = enum.auto()
    VDUP = enum.auto()  # broadcast scalar register into all lanes
    VMOV = enum.auto()  # vector register move
    VLD1 = enum.auto()  # vector load (128-bit)
    VST1 = enum.auto()  # vector store (128-bit)

    # --- misc ---
    NOP = enum.auto()
    HALT = enum.auto()


#: Logical scalar ops (arith/logic bit of the slack lookup = logic).
LOGICAL_OPS = frozenset({
    Opcode.AND, Opcode.ORR, Opcode.EOR, Opcode.BIC, Opcode.MVN,
    Opcode.TST, Opcode.TEQ, Opcode.MOV,
})

#: Standalone shift/rotate ops (classified as logic-with-shift buckets).
SHIFT_OPS = frozenset({
    Opcode.LSL, Opcode.LSR, Opcode.ASR, Opcode.ROR, Opcode.RRX,
})

#: Arithmetic scalar ops (carry chain → widest delay spread with width).
ARITH_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.RSB, Opcode.ADC, Opcode.SBC,
    Opcode.RSC, Opcode.CMP, Opcode.CMN,
})

#: Ops that only produce flags (no destination register).
FLAG_ONLY_OPS = frozenset({Opcode.TST, Opcode.TEQ, Opcode.CMP, Opcode.CMN})

#: Ops that consume the carry flag as an input.
CARRY_IN_OPS = frozenset({Opcode.ADC, Opcode.SBC, Opcode.RSC, Opcode.RRX})

#: SIMD ops whose lanes are single-cycle and transparent-capable.
SIMD_SINGLE_CYCLE_OPS = frozenset({
    Opcode.VADD, Opcode.VSUB, Opcode.VMAX, Opcode.VMIN, Opcode.VAND,
    Opcode.VORR, Opcode.VEOR, Opcode.VSHL, Opcode.VSHR, Opcode.VDUP,
    Opcode.VMOV,
})

#: SIMD ops that are pipelined multi-cycle but support late forwarding of
#: the accumulate operand from a similar op (Sec. V, Cortex-A57 note).
SIMD_ACCUMULATE_OPS = frozenset({Opcode.VMLA})

_OPCLASS_TABLE = {
    **{op: OpClass.ALU for op in LOGICAL_OPS | SHIFT_OPS | ARITH_OPS},
    Opcode.MUL: OpClass.MUL, Opcode.MLA: OpClass.MUL,
    Opcode.SDIV: OpClass.DIV, Opcode.UDIV: OpClass.DIV,
    Opcode.FADD: OpClass.FP, Opcode.FSUB: OpClass.FP,
    Opcode.FMUL: OpClass.FP, Opcode.FDIV: OpClass.FP,
    Opcode.LDR: OpClass.LOAD, Opcode.LDRB: OpClass.LOAD,
    Opcode.VLD1: OpClass.LOAD,
    Opcode.STR: OpClass.STORE, Opcode.STRB: OpClass.STORE,
    Opcode.VST1: OpClass.STORE,
    Opcode.B: OpClass.BRANCH, Opcode.BL: OpClass.BRANCH,
    **{op: OpClass.SIMD
       for op in SIMD_SINGLE_CYCLE_OPS | SIMD_ACCUMULATE_OPS
       | {Opcode.VMUL}},
    Opcode.NOP: OpClass.NOP,
    Opcode.HALT: OpClass.HALT,
}


def op_class(opcode: Opcode) -> OpClass:
    """Return the execution class of *opcode*."""
    return _OPCLASS_TABLE[opcode]


def is_single_cycle_alu(opcode: Opcode) -> bool:
    """True when *opcode* is a single-cycle scalar integer ALU op.

    These are exactly the operations whose data slack ReDSOC recycles
    (plus single-cycle SIMD lanes, handled separately).
    """
    return _OPCLASS_TABLE[opcode] is OpClass.ALU


def is_transparent_capable(opcode: Opcode) -> bool:
    """True when *opcode* can take part in a transparent chain.

    Single-cycle scalar ALU ops and single-cycle / accumulate-forwarding
    SIMD ops qualify; loads, stores, branches, FP and other multi-cycle
    ops are true synchronous (Sec. III).
    """
    if is_single_cycle_alu(opcode):
        return True
    return opcode in SIMD_SINGLE_CYCLE_OPS or opcode in SIMD_ACCUMULATE_OPS
