"""Request tracing: W3C-traceparent contexts, spans, sinks, export.

The serve/campaign stack is a chain of queues and process boundaries —
client SDK → httpd → admission queue → worker process → campaign cache
→ engine — and a slow request's time can hide in any hop.  This module
gives every hop a **span** correlated by one **trace id**:

* :class:`TraceContext` is the wire-format identity — a 32-hex
  ``trace_id`` shared by every span of one request, a 16-hex
  ``span_id`` naming the current hop, serialised as a W3C
  ``traceparent`` header (``00-<trace>-<span>-<flags>``);
* :class:`Tracer` mints contexts and records finished spans into a
  sink.  It is an **explicit object** — there is no ambient
  thread-local or global tracer, so code that was deterministic
  without tracing stays deterministic (the ``--exact-cycles`` gate
  never sees a hidden RNG draw);
* sinks: :class:`SpanRecorder` (in-memory list) and
  :class:`JsonlSpanSink` (streaming JSONL file), mirroring the event
  bus in :mod:`repro.obs.events`;
* export: :func:`spans_chrome_trace` renders a span stream as
  Perfetto-compatible Chrome trace JSON (one track per component /
  worker pid), and :func:`merge_chrome_traces` splices request tracks
  into a simulator trace document from
  :func:`repro.obs.export.chrome_trace`;
* analysis: :func:`span_trees` reconstructs per-trace parent/child
  trees, :func:`trace_coverage` measures how much of a request's wall
  time its child segments explain (the end-to-end tracing acceptance
  gate), :func:`validate_spans` is the CI schema check.

``python -m repro.obs.trace validate|perfetto|coverage|tree`` wraps
the analysis functions for CI and interactive debugging.

Spans cross the worker process boundary **by value**: the parent
serialises its context into the payload, the worker builds spans
locally (its own clock) and returns them as JSON objects in the result
envelope; the parent re-emits them into its sink.  Durations are
therefore immune to inter-process clock skew.
"""

from __future__ import annotations

import argparse
import json
import random
import re
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

PathLike = Union[str, Path]

#: span stream schema version (validated by :func:`validate_spans`)
SPAN_SCHEMA = 1

_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


@dataclass(frozen=True)
class TraceContext:
    """One hop's identity inside a trace (immutable, explicit)."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        """W3C ``traceparent`` header value for this context."""
        return (f"00-{self.trace_id}-{self.span_id}-"
                f"{'01' if self.sampled else '00'}")

    @classmethod
    def parse(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` when malformed.

        A malformed header is *not* an error — per the W3C spec the
        receiver simply starts a fresh trace.
        """
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        trace_id, span_id, flags = match.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id=trace_id, span_id=span_id,
                   sampled=bool(int(flags, 16) & 1))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for crossing a process boundary."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": self.sampled}

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "TraceContext":
        return cls(trace_id=obj["trace_id"], span_id=obj["span_id"],
                   sampled=bool(obj.get("sampled", True)))


class IdSource:
    """Seedable trace/span id generator (an explicit RNG, no globals).

    Pass a seed for reproducible ids in tests and the deterministic
    load generator; leave it ``None`` for entropy-seeded production
    ids.  Either way the RNG is *owned* — nothing here touches the
    module-level :mod:`random` state the simulator's determinism gates
    care about.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def trace_id(self) -> str:
        return f"{self._rng.getrandbits(128):032x}"

    def span_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"


@dataclass
class Span:
    """One finished (or finishing) segment of a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    #: wall-clock epoch microseconds (same-host spans compare fine)
    start_us: int = 0
    end_us: int = 0
    component: str = ""
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_us(self) -> int:
        return max(0, self.end_us - self.start_us)

    def to_json_obj(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "name": self.name, "trace_id": self.trace_id,
            "span_id": self.span_id, "start_us": self.start_us,
            "end_us": self.end_us, "component": self.component,
            "status": self.status,
        }
        if self.parent_id is not None:
            obj["parent_id"] = self.parent_id
        if self.attrs:
            obj["attrs"] = self.attrs
        return obj


def span_from_json_obj(obj: Dict[str, Any]) -> Span:
    return Span(
        name=obj["name"], trace_id=obj["trace_id"],
        span_id=obj["span_id"], parent_id=obj.get("parent_id"),
        start_us=int(obj["start_us"]), end_us=int(obj["end_us"]),
        component=obj.get("component", ""),
        status=obj.get("status", "ok"),
        attrs=dict(obj.get("attrs", {})))


class SpanRecorder:
    """Collects finished spans in memory (tests, small tools)."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def emit(self, span: Span) -> None:
        self.spans.append(span)


class JsonlSpanSink:
    """Streams spans to a JSONL handle (one object per line).

    Thread-safe: the serve daemon's event loop and the background
    flusher may emit concurrently.
    """

    def __init__(self, fh: IO[str]) -> None:
        self._fh = fh
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_json_obj(), separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")


class ActiveSpan:
    """A span being timed; finish with :meth:`end` or ``with``."""

    __slots__ = ("_tracer", "span", "ctx")

    def __init__(self, tracer: "Tracer", span: Span,
                 ctx: TraceContext) -> None:
        self._tracer = tracer
        self.span = span
        self.ctx = ctx

    def set(self, **attrs: Any) -> "ActiveSpan":
        self.span.attrs.update(attrs)
        return self

    def end(self, status: Optional[str] = None) -> Span:
        if status is not None:
            self.span.status = status
        if self.span.end_us == 0:
            self.span.end_us = self._tracer.now_us()
        self._tracer.record(self.span)
        return self.span

    def __enter__(self) -> "ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end(status="error" if exc_type is not None else None)


class Tracer:
    """Explicit tracer: mints contexts, times spans, feeds a sink."""

    def __init__(self, sink: Any, *, ids: Optional[IdSource] = None,
                 clock=time.time) -> None:
        self.sink = sink
        self.ids = ids if ids is not None else IdSource()
        self._clock = clock

    def now_us(self) -> int:
        return int(self._clock() * 1e6)

    # -- contexts ------------------------------------------------------

    def new_root(self) -> TraceContext:
        return TraceContext(trace_id=self.ids.trace_id(),
                            span_id=self.ids.span_id())

    def child_of(self, ctx: TraceContext) -> TraceContext:
        return TraceContext(trace_id=ctx.trace_id,
                            span_id=self.ids.span_id(),
                            sampled=ctx.sampled)

    # -- spans ---------------------------------------------------------

    def start(self, name: str, *,
              parent: Optional[TraceContext] = None,
              component: str = "",
              start_us: Optional[int] = None,
              **attrs: Any) -> ActiveSpan:
        """Open a span.  With *parent* the span continues that trace
        (becoming its child); without, it roots a fresh trace."""
        ctx = self.child_of(parent) if parent is not None \
            else self.new_root()
        span = Span(
            name=name, trace_id=ctx.trace_id, span_id=ctx.span_id,
            parent_id=parent.span_id if parent is not None else None,
            start_us=start_us if start_us is not None else self.now_us(),
            component=component, attrs=dict(attrs))
        return ActiveSpan(self, span, ctx)

    def record(self, span: Span) -> None:
        """Emit an already-built span (e.g. returned by a worker)."""
        if self.sink is not None:
            self.sink.emit(span)

    def record_json(self, objs: Iterable[Dict[str, Any]]) -> None:
        """Re-emit worker-marshalled span objects into the sink."""
        for obj in objs:
            self.record(span_from_json_obj(obj))


# -- persistence -------------------------------------------------------

def write_spans_jsonl(spans: Iterable[Span], path: PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        sink = JsonlSpanSink(fh)
        for span in spans:
            sink.emit(span)
    return path


def read_spans_jsonl(path: PathLike) -> List[Span]:
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(span_from_json_obj(json.loads(line)))
    return spans


# -- validation (the CI schema gate) -----------------------------------

_HEX_TRACE = re.compile(r"^[0-9a-f]{32}$")
_HEX_SPAN = re.compile(r"^[0-9a-f]{16}$")


def validate_spans(objs: Sequence[Dict[str, Any]]) -> List[str]:
    """Schema-check raw span objects; returns problem strings.

    Checks id formats, timestamps, span-id uniqueness, and that every
    trace is rooted.  A span whose parent is absent from the stream is
    *not* an error — it is a **remote-parented root** (the server's
    ``request`` span parents to the client SDK's span, which lives in
    the client's own export); what is an error is a trace where every
    span's parent resolves locally in a cycle, which can never render
    as a tree.
    """
    problems: List[str] = []
    by_trace: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for i, obj in enumerate(objs):
        if not isinstance(obj, dict):
            problems.append(f"[{i}] not an object")
            continue
        for key in ("name", "trace_id", "span_id", "start_us",
                    "end_us"):
            if key not in obj:
                problems.append(f"[{i}] missing {key!r}")
        trace_id = obj.get("trace_id", "")
        span_id = obj.get("span_id", "")
        if not _HEX_TRACE.match(str(trace_id)):
            problems.append(f"[{i}] bad trace_id {trace_id!r}")
        if not _HEX_SPAN.match(str(span_id)):
            problems.append(f"[{i}] bad span_id {span_id!r}")
        start, end = obj.get("start_us"), obj.get("end_us")
        if not isinstance(start, int) or not isinstance(end, int):
            problems.append(f"[{i}] non-integer timestamps")
        elif end < start:
            problems.append(f"[{i}] ends before it starts "
                            f"({end} < {start})")
        trace = by_trace.setdefault(str(trace_id), {})
        if span_id in trace:
            problems.append(f"[{i}] duplicate span_id {span_id!r} "
                            f"in trace {trace_id!r}")
        trace[str(span_id)] = obj
    for trace_id, spans in by_trace.items():
        roots = sum(
            1 for obj in spans.values()
            if obj.get("parent_id") is None
            or obj.get("parent_id") not in spans)
        if roots == 0 and spans:
            problems.append(f"trace {trace_id}: no root span "
                            f"(parent cycle)")
    return problems


# -- analysis ----------------------------------------------------------

@dataclass
class SpanNode:
    """One span plus its resolved children (a trace tree node)."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    def walk(self, depth: int = 0):
        yield depth, self.span
        for child in sorted(self.children,
                            key=lambda n: n.span.start_us):
            yield from child.walk(depth + 1)


def span_trees(spans: Sequence[Span]) -> Dict[str, List[SpanNode]]:
    """Reconstruct the root nodes of every trace in a span stream.

    A root is a span with no parent *or* a parent absent from the
    stream (remote-parented — e.g. a server ``request`` span whose
    parent is the client SDK's span, exported elsewhere).  One trace
    can have several roots: a client retry produces one ``request``
    root per attempt, all under the same trace id.
    """
    nodes: Dict[Tuple[str, str], SpanNode] = {}
    for span in spans:
        nodes[(span.trace_id, span.span_id)] = SpanNode(span)
    trees: Dict[str, List[SpanNode]] = {}
    for (trace_id, _), node in nodes.items():
        parent_id = node.span.parent_id
        parent = nodes.get((trace_id, parent_id)) \
            if parent_id is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            trees.setdefault(trace_id, []).append(node)
    for roots in trees.values():
        roots.sort(key=lambda n: n.span.start_us)
    return trees


def _iter_nodes(node: SpanNode):
    yield node
    for child in node.children:
        yield from _iter_nodes(child)


def trace_coverage(root: SpanNode) -> float:
    """Fraction of the root span's wall time its descendants explain.

    Direct children's durations are summed over the union of their
    intervals (overlapping children — e.g. a sweep's parallel worker
    fan-out — count once), so the result is ``<= 1`` modulo worker
    clock skew and answers "how much of this request's latency is
    attributed to a traced segment?".
    """
    duration = root.span.duration_us
    if duration <= 0:
        return 1.0
    intervals = sorted(
        (child.span.start_us, child.span.end_us)
        for child in root.children if child.span.duration_us > 0)
    covered = 0
    cursor: Optional[int] = None
    end_max = 0
    for start, end in intervals:
        if cursor is None or start > end_max:
            if cursor is not None:
                covered += end_max - cursor
            cursor, end_max = start, end
        else:
            end_max = max(end_max, end)
    if cursor is not None:
        covered += end_max - cursor
    return min(1.0, covered / duration)


def coverage_report(spans: Sequence[Span],
                    root_name: str = "request") -> Dict[str, Any]:
    """Coverage stats over every request tree in a span stream.

    Only roots that actually fanned out (have children) are scored —
    an LRU hit is answered inline and legitimately has no segments.
    """
    trees = span_trees(spans)
    scored: List[Tuple[float, int, str]] = []
    leaves = 0
    for trace_id, roots in trees.items():
        for root in roots:
            for node in _iter_nodes(root):
                if node.span.name != root_name:
                    continue
                if not node.children:
                    leaves += 1
                    continue
                scored.append((trace_coverage(node),
                               node.span.duration_us, trace_id))
    scored.sort()
    def pct(p: float) -> Optional[float]:
        if not scored:
            return None
        return round(scored[min(len(scored) - 1,
                                int(p * len(scored)))][0], 4)
    return {
        "traces": len(trees),
        "scored": len(scored),
        "segmentless": leaves,
        "coverage_min": round(scored[0][0], 4) if scored else None,
        "coverage_p50": pct(0.50),
        "coverage_p99": pct(0.99),
        "worst": [{"trace_id": t, "coverage": round(c, 4),
                   "duration_us": d} for c, d, t in scored[:5]],
    }


# -- Perfetto / Chrome trace export ------------------------------------

def spans_chrome_trace(spans: Sequence[Span], *,
                       pid: int = 100) -> Dict[str, Any]:
    """Render spans as Chrome trace JSON: one track per component.

    Worker-side spans carry a ``worker`` attribute (``pid-1234``), so
    each worker process gets its own track; ``ts`` is microseconds
    relative to the earliest span, which keeps the document compact
    and lines up with the simulator convention (1 trace µs = 1 unit).
    """
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(s.start_us for s in spans)

    def track_of(span: Span) -> str:
        worker = span.attrs.get("worker")
        if worker:
            return f"worker {worker}"
        return span.component or "request"

    tracks: List[str] = []
    for span in spans:
        track = track_of(span)
        if track not in tracks:
            tracks.append(track)
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}

    out: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "redsoc-serve requests (1 us = 1 us wall)"},
    }]
    for track, tid in tid_of.items():
        out.append({"name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": track}})
        out.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"sort_index": tid}})
    for span in spans:
        out.append({
            "name": span.name, "cat": span.component or "span",
            "ph": "X", "pid": pid, "tid": tid_of[track_of(span)],
            "ts": span.start_us - base, "dur": span.duration_us,
            "args": {"trace_id": span.trace_id,
                     "span_id": span.span_id,
                     "status": span.status, **span.attrs},
        })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def merge_chrome_traces(*docs: Dict[str, Any]) -> Dict[str, Any]:
    """Splice several Chrome trace documents into one.

    Process ids are re-numbered to stay distinct, so request-span
    tracks and simulator FU tracks coexist in one Perfetto view.
    """
    merged: List[Dict[str, Any]] = []
    for index, doc in enumerate(docs):
        for event in doc.get("traceEvents", ()):
            event = dict(event)
            event["pid"] = index + 1
            merged.append(event)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


# -- CLI (CI artifact validation + interactive debugging) --------------

def _load_objs(path: Path) -> List[Dict[str, Any]]:
    objs: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                objs.append(json.loads(line))
    return objs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Validate, export and analyse request-span JSONL "
                    "streams written by the serve daemon.")
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate",
                              help="schema-check a spans.jsonl file")
    validate.add_argument("path", type=Path)

    perfetto = sub.add_parser(
        "perfetto", help="render spans as Chrome/Perfetto trace JSON")
    perfetto.add_argument("path", type=Path)
    perfetto.add_argument("--out", type=Path, required=True)
    perfetto.add_argument("--merge", type=Path, default=None,
                          help="splice in an existing Chrome trace "
                               "document (e.g. a simulator trace)")

    coverage = sub.add_parser(
        "coverage",
        help="check that request segments explain the request wall "
             "time (the end-to-end tracing gate)")
    coverage.add_argument("path", type=Path)
    coverage.add_argument("--min-coverage", type=float, default=0.95,
                          help="fail (exit 1) when p50 or p99 segment "
                               "coverage falls below this fraction")

    tree = sub.add_parser("tree",
                          help="print one trace's span tree")
    tree.add_argument("path", type=Path)
    tree.add_argument("trace_id")

    args = parser.parse_args(argv)
    objs = _load_objs(args.path)

    if args.command == "validate":
        problems = validate_spans(objs)
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(objs)} spans, {len(problems)} problem(s)")
        return 1 if problems else 0

    spans = [span_from_json_obj(obj) for obj in objs]

    if args.command == "perfetto":
        doc = spans_chrome_trace(spans)
        if args.merge is not None:
            with open(args.merge, "r", encoding="utf-8") as fh:
                doc = merge_chrome_traces(json.load(fh), doc)
        args.out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        print(f"wrote {args.out} "
              f"({len(doc['traceEvents'])} trace events)")
        return 0

    if args.command == "coverage":
        report = coverage_report(spans)
        print(json.dumps(report, indent=2, sort_keys=True))
        if not report["scored"]:
            print("no scoreable request trees", file=sys.stderr)
            return 1
        p50, p99 = report["coverage_p50"], report["coverage_p99"]
        # scored list is sorted ascending, so p50/p99 here are the
        # *worst-half* markers: gate on both ends of the distribution
        worst = report["coverage_min"]
        if p50 < args.min_coverage or worst < args.min_coverage * 0.8:
            print(f"FAIL: coverage p50={p50} min={worst} below "
                  f"{args.min_coverage}", file=sys.stderr)
            return 1
        return 0

    if args.command == "tree":
        trees = span_trees(spans)
        roots = trees.get(args.trace_id)
        if roots is None:
            matches = [t for t in trees if t.startswith(args.trace_id)]
            if len(matches) == 1:
                roots = trees[matches[0]]
            else:
                print(f"trace {args.trace_id!r} not found "
                      f"({len(trees)} traces in file)", file=sys.stderr)
                return 2
        for root in roots:
            for depth, span in root.walk():
                indent = "  " * depth
                attrs = " ".join(f"{k}={v}"
                                 for k, v in span.attrs.items())
                print(f"{indent}{span.name} [{span.component}] "
                      f"{span.duration_us} us {span.status} {attrs}")
        return 0

    return 2


if __name__ == "__main__":
    sys.exit(main())
