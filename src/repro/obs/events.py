"""Typed pipeline events and event sinks.

The simulator publishes its life-of-a-uop milestones as
:class:`Event` records through whatever *sink* the caller attached.
The contract that keeps the hot loop fast:

* **no sink attached (the default)** — every emission site is guarded
  by one attribute-load + ``is None`` check and no event object is
  ever constructed; an untraced run does the same work as before the
  event bus existed;
* **sink attached** — events are plain ``NamedTuple`` instances (no
  ``__dict__``), and sinks are anything with an ``emit(event)``
  method, so a recording sink boils down to ``list.append``.

Event payloads are JSON-safe dicts: :mod:`repro.obs.export` writes
them to JSONL verbatim, and :func:`repro.core.audit.audit_from_events`
re-derives the full timing audit from them.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, IO, Iterable, List, NamedTuple, Optional, Union


class EventKind(str, enum.Enum):
    """Every pipeline event the simulator can publish."""

    #: one simulation begins: trace/config identity, FU pool geometry
    META = "meta"
    #: trace entry entered the fetch queue
    FETCH = "fetch"
    #: conditional-branch direction mispredicted at fetch
    BRANCH_MISPREDICT = "branch_mispredict"
    #: uop renamed + allocated into ROB/RS/LSQ
    DISPATCH = "dispatch"
    #: dispatch blocked this cycle (ROB/RS/LSQ full)
    DISPATCH_STALL = "dispatch_stall"
    #: uop drained from the wakeup array into a pending select queue
    WAKEUP = "wakeup"
    #: select arbiter granted a pending request ("P" or "GP" phase)
    SELECT = "select"
    #: uop issued; payload carries the full resolved execution window
    EXEC_WINDOW = "exec_window"
    #: GP-phase (same-cycle-as-parent) speculative grant
    GP_GRANT = "gp_grant"
    #: execution window crossed a clock edge: FU held 2 cycles
    HOLD = "hold"
    #: issued off a mispredicted last-arrival tag; selective reissue
    LA_REPLAY = "la_replay"
    #: aggressive width misprediction; conservative re-execution
    WIDTH_MISPREDICT = "width_mispredict"
    #: at least one FU class denied an old ready request this cycle
    FU_STALL = "fu_stall"
    #: result latched / usable by synchronous consumers
    WRITEBACK = "writeback"
    #: in-order retirement from the ROB head
    COMMIT = "commit"
    #: cache-hierarchy access resolved (level + latency)
    MEM_ACCESS = "mem_access"
    #: timing-invariant violation (published by the auditor)
    VIOLATION = "violation"


class Event(NamedTuple):
    """One pipeline event.

    ``cycle`` is the simulated cycle the event was published in
    (``-1`` when not cycle-bound, e.g. META), ``seq`` the dynamic
    instruction sequence number (``-1`` when not uop-bound), and
    ``data`` a JSON-safe payload dict.
    """

    kind: EventKind
    cycle: int = -1
    seq: int = -1
    data: Dict[str, Any] = {}

    def to_json_obj(self) -> Dict[str, Any]:
        return {"kind": self.kind.value, "cycle": self.cycle,
                "seq": self.seq, "data": self.data}

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "Event":
        return cls(kind=EventKind(obj["kind"]), cycle=obj["cycle"],
                   seq=obj["seq"], data=obj.get("data") or {})


class NullSink:
    """Explicit no-op sink (``None`` is the even cheaper idiom)."""

    def emit(self, event: Event) -> None:
        pass


#: shared no-op instance for call sites that want a non-None sink
NULL_SINK = NullSink()


class Recorder:
    """In-memory sink: keeps every event in publication order."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        # bind the append once; emission is then a plain method call
        self.emit = self.events.append

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> List[Event]:
        return [e for e in self.events if e.kind is kind]

    def clear(self) -> None:
        del self.events[:]


class JsonlSink:
    """Streams events to a JSONL file handle as they are emitted.

    Accepts an open text handle; the caller owns its lifetime (use
    :func:`repro.obs.export.write_events_jsonl` for the common
    record-then-dump flow).
    """

    def __init__(self, fh: IO[str]) -> None:
        self._fh = fh

    def emit(self, event: Event) -> None:
        self._fh.write(json.dumps(event.to_json_obj(),
                                  separators=(",", ":")))
        self._fh.write("\n")


class TeeSink:
    """Fans one event stream out to several sinks."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)


def events_from_jsonl(lines: Iterable[str]) -> List[Event]:
    """Parse an iterable of JSONL lines back into events."""
    events: List[Event] = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(Event.from_json_obj(json.loads(line)))
    return events


SinkLike = Optional[Union[NullSink, Recorder, JsonlSink, TeeSink, Any]]
