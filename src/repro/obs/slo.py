"""SLO definitions and burn-rate checking for the serve stack.

An SLO here is a pair of objectives over a window of requests:

* **availability** — at least ``availability`` of requests answered
  without a 5xx or transport error;
* **latency** — at least ``latency_objective`` of successful requests
  answered within ``latency_ms``.

The reported number is the **burn rate**: the observed bad fraction
divided by the error budget (``1 - objective``).  Burn rate 1.0 means
the window consumed its budget exactly; 2.0 means at this rate the
budget is gone in half the window; below 1.0 is healthy.  Gating CI on
``burn <= max_burn`` is strictly more informative than a raw "p99 <
X ms" assert because it scales with how much headroom the objective
allows, and the same number is what the live ops dashboard shows.

Inputs: a loadgen report (``BENCH_serve.json``, schema 1 or 2 — the
schema-2 ``latency_cdf_ms`` table makes the latency leg exact) or live
Prometheus cumulative buckets scraped from ``/metrics``
(:func:`burn_from_buckets`).

CLI::

    python -m repro.obs.slo BENCH_serve.json \
        --availability 0.995 --latency-ms 250 --latency-objective 0.99 \
        --max-burn 1.0
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: thresholds (ms) the load generator tabulates its latency CDF at
CDF_THRESHOLDS_MS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective pair (availability + latency)."""

    availability: float = 0.999
    latency_ms: float = 250.0
    latency_objective: float = 0.99

    def __post_init__(self) -> None:
        for name in ("availability", "latency_objective"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), "
                                 f"got {value!r}")
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive")


@dataclass
class SloResult:
    """One objective's verdict over a window."""

    name: str
    objective: float
    bad_fraction: float
    burn_rate: float
    detail: str = ""

    def ok(self, max_burn: float = 1.0) -> bool:
        return self.burn_rate <= max_burn

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name, "objective": self.objective,
                "bad_fraction": round(self.bad_fraction, 6),
                "burn_rate": (round(self.burn_rate, 4)
                              if math.isfinite(self.burn_rate)
                              else "inf"),
                "detail": self.detail}


def burn_rate(bad_fraction: float, objective: float) -> float:
    """Observed bad fraction over the error budget."""
    budget = 1.0 - objective
    if bad_fraction <= 0.0:
        return 0.0
    if budget <= 0.0:
        return math.inf
    return bad_fraction / budget


def _availability_result(payload: Dict[str, Any],
                         spec: SloSpec) -> SloResult:
    counts = payload.get("status_counts", {})
    transport = sum(payload.get("transport_errors", {}).values())
    total = sum(counts.values()) + transport
    bad = counts.get("5xx", 0) + transport
    fraction = bad / total if total else 0.0
    return SloResult(
        name="availability", objective=spec.availability,
        bad_fraction=fraction,
        burn_rate=burn_rate(fraction, spec.availability),
        detail=f"{bad}/{total} failed (5xx + transport)")


def _fraction_over_from_cdf(cdf_ms: Dict[str, float],
                            threshold_ms: float
                            ) -> Optional[Tuple[float, float]]:
    """Exact fraction of requests over *threshold_ms* from the
    loadgen CDF table; picks the largest tabulated threshold that does
    not exceed the requested one (conservative).  Returns
    ``(fraction_over, threshold_used)`` or ``None``."""
    usable = sorted(
        (float(key) for key in cdf_ms if float(key) <= threshold_ms))
    if not usable:
        return None
    used = usable[-1]
    under = cdf_ms[f"{used:g}"]
    return max(0.0, 1.0 - float(under)), used


def _latency_result(payload: Dict[str, Any],
                    spec: SloSpec) -> SloResult:
    cdf = payload.get("latency_cdf_ms")
    if isinstance(cdf, dict) and cdf:
        resolved = _fraction_over_from_cdf(cdf, spec.latency_ms)
        if resolved is not None:
            fraction, used = resolved
            return SloResult(
                name=f"latency<={spec.latency_ms:g}ms",
                objective=spec.latency_objective,
                bad_fraction=fraction,
                burn_rate=burn_rate(fraction, spec.latency_objective),
                detail=f"{fraction:.2%} over {used:g}ms "
                       f"(exact, from CDF)")
    # schema-1 fallback: bracket the over-fraction from percentiles
    lat = payload.get("latency_ms", {})
    marks = [(0.50, lat.get("p50")), (0.95, lat.get("p95")),
             (0.99, lat.get("p99")), (0.999, lat.get("p99.9"))]
    fraction = 0.0
    for p, value in marks:
        if value is not None and value > spec.latency_ms:
            fraction = 1.0 - p
            break
    return SloResult(
        name=f"latency<={spec.latency_ms:g}ms",
        objective=spec.latency_objective,
        bad_fraction=fraction,
        burn_rate=burn_rate(fraction, spec.latency_objective),
        detail="bracketed from percentiles (no CDF in report)")


def check_report(payload: Dict[str, Any], spec: SloSpec
                 ) -> List[SloResult]:
    """Evaluate both objectives over a loadgen report payload."""
    return [_availability_result(payload, spec),
            _latency_result(payload, spec)]


def burn_from_buckets(buckets: Sequence[Tuple[float, int]],
                      total: int, threshold_us: float,
                      objective: float) -> Optional[float]:
    """Latency burn rate from Prometheus cumulative ``le`` buckets.

    *buckets* is ``[(le_us, cumulative_count), ...]`` as scraped from
    ``/metrics``; the fraction over the threshold uses the tightest
    bucket boundary at or below it.  ``None`` with no observations.
    """
    if total <= 0:
        return None
    under = 0
    for le, count in sorted(buckets):
        if le <= threshold_us:
            under = count
        else:
            break
    fraction = max(0.0, 1.0 - under / total)
    return burn_rate(fraction, objective)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.slo",
        description="SLO burn-rate check over a loadgen report "
                    "(exit 1 when any objective burns too fast).")
    parser.add_argument("report", type=Path,
                        help="BENCH_serve.json from the load generator")
    parser.add_argument("--availability", type=float, default=0.999)
    parser.add_argument("--latency-ms", type=float, default=250.0)
    parser.add_argument("--latency-objective", type=float,
                        default=0.99)
    parser.add_argument("--max-burn", type=float, default=1.0,
                        help="largest acceptable burn rate")
    args = parser.parse_args(argv)

    try:
        payload = json.loads(args.report.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.report}: {exc}",
              file=sys.stderr)
        return 2
    try:
        spec = SloSpec(availability=args.availability,
                       latency_ms=args.latency_ms,
                       latency_objective=args.latency_objective)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    results = check_report(payload, spec)
    failed = False
    for result in results:
        verdict = "ok" if result.ok(args.max_burn) else "BURN"
        failed = failed or not result.ok(args.max_burn)
        burn = (f"{result.burn_rate:.2f}"
                if math.isfinite(result.burn_rate) else "inf")
        print(f"{verdict:4s} {result.name}: burn={burn} "
              f"(objective {result.objective}, {result.detail})")
    if failed:
        print(f"FAIL: burn rate above {args.max_burn}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
