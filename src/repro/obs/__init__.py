"""Pipeline observability: structured events, metrics, exporters.

``repro.obs`` is the tracing/metrics substrate of the simulator:

* :mod:`repro.obs.events` — a near-zero-overhead event bus with typed
  pipeline events (fetch → dispatch → wakeup → select → issue →
  execute-window → writeback → commit, plus GP-speculative grants,
  mispredict replays, 2-cycle holds and stalls).  Tracing is *off* by
  default: every emission site in the hot simulator loop is guarded by
  a single ``is None`` check, so an untraced run is bit-identical (in
  cycles *and* wall-clock shape) to an uninstrumented one.
* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  tick-resolution histograms) that :class:`~repro.analysis.stats.SimStats`
  populates through at the end of a run.
* :mod:`repro.obs.export` — JSONL event dumps, Chrome trace-event /
  Perfetto JSON (one track per FU class, one tick-precise slice per
  uop execution window), and metrics snapshots.

Audit-trace *replay* (re-deriving :func:`repro.core.audit.audit_run`'s
invariant checks from a recorded event stream) lives in
:mod:`repro.core.audit` next to the live auditor.
"""

from .events import (
    Event,
    EventKind,
    JsonlSink,
    NULL_SINK,
    NullSink,
    Recorder,
    TeeSink,
)
from .export import (
    chrome_trace,
    metrics_to_jsonl,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
)
from .metrics import Counter, Gauge, MetricsRegistry, TickHistogram

__all__ = [
    "Counter", "Event", "EventKind", "Gauge", "JsonlSink",
    "MetricsRegistry", "NULL_SINK", "NullSink", "Recorder", "TeeSink",
    "TickHistogram", "chrome_trace", "metrics_to_jsonl",
    "read_events_jsonl", "write_chrome_trace", "write_events_jsonl",
    "write_metrics_jsonl",
]
