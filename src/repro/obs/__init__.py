"""Pipeline observability: structured events, metrics, exporters.

``repro.obs`` is the tracing/metrics substrate of the simulator:

* :mod:`repro.obs.events` — a near-zero-overhead event bus with typed
  pipeline events (fetch → dispatch → wakeup → select → issue →
  execute-window → writeback → commit, plus GP-speculative grants,
  mispredict replays, 2-cycle holds and stalls).  Tracing is *off* by
  default: every emission site in the hot simulator loop is guarded by
  a single ``is None`` check, so an untraced run is bit-identical (in
  cycles *and* wall-clock shape) to an uninstrumented one.
* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  tick-resolution histograms) that :class:`~repro.analysis.stats.SimStats`
  populates through at the end of a run.
* :mod:`repro.obs.export` — JSONL event dumps, Chrome trace-event /
  Perfetto JSON (one track per FU class, one tick-precise slice per
  uop execution window), and metrics snapshots.

Audit-trace *replay* (re-deriving :func:`repro.core.audit.audit_run`'s
invariant checks from a recorded event stream) lives in
:mod:`repro.core.audit` next to the live auditor.

The *service* layers (repro.serve, repro.campaign) observe through
three sibling modules built on the same explicit-object discipline:

* :mod:`repro.obs.trace` — W3C-traceparent request tracing: explicit
  :class:`~repro.obs.trace.TraceContext`/:class:`~repro.obs.trace.Tracer`
  objects (no ambient globals), spans across the client → httpd →
  queue → worker-process → cache → engine chain, JSONL + Perfetto
  export, span-tree analysis and a CI validator;
* :mod:`repro.obs.log` — structured JSON logging with bound
  correlation fields (every error line carries its ``trace_id``);
* :mod:`repro.obs.slo` — SLO burn-rate checking over loadgen reports
  and live ``/metrics`` histograms.
"""

from .events import (
    Event,
    EventKind,
    JsonlSink,
    NULL_SINK,
    NullSink,
    Recorder,
    TeeSink,
)
from .export import (
    chrome_trace,
    metrics_to_jsonl,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
)
from .log import JsonLogger, JsonLogHandler, stderr_logger
from .metrics import (
    Counter,
    Gauge,
    LATENCY_BUCKETS_US,
    MetricsRegistry,
    TickHistogram,
    histogram_quantile,
    parse_prometheus,
)
from .slo import SloSpec, check_report
from .trace import (
    IdSource,
    JsonlSpanSink,
    Span,
    SpanRecorder,
    TraceContext,
    Tracer,
    merge_chrome_traces,
    span_trees,
    spans_chrome_trace,
    validate_spans,
)

__all__ = [
    "Counter", "Event", "EventKind", "Gauge", "IdSource",
    "JsonLogHandler", "JsonLogger", "JsonlSink", "JsonlSpanSink",
    "LATENCY_BUCKETS_US", "MetricsRegistry", "NULL_SINK", "NullSink",
    "Recorder", "SloSpec", "Span", "SpanRecorder", "TeeSink",
    "TickHistogram", "TraceContext", "Tracer", "check_report",
    "chrome_trace", "histogram_quantile", "merge_chrome_traces",
    "metrics_to_jsonl", "parse_prometheus", "read_events_jsonl",
    "span_trees", "spans_chrome_trace", "stderr_logger",
    "validate_spans", "write_chrome_trace", "write_events_jsonl",
    "write_metrics_jsonl",
]
