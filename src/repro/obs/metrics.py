"""Metrics registry: counters, gauges, tick-resolution histograms.

The registry is the structured home for everything a simulation can
measure.  :class:`~repro.analysis.stats.SimStats` — the flat dataclass
every bench and report reads — is populated *through* the registry at
the end of a run (see ``SimStats.populate_from``), and the registry
itself is what the exporters snapshot, so the CLI's metrics dump, the
campaign JSON and the pytest benches all agree by construction.

Histograms are integer-bucketed at tick resolution (one bucket per
tick value), which matches the simulator's native time base: the
slack-per-op and issue-to-execute-latency distributions come out
exact, not binned.  Histogram observation only happens on traced runs
(the simulator guards it together with event emission), so the
untraced hot loop pays nothing.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        """Overwrite (used when mirroring an externally-kept count)."""
        self.value = value


class Gauge:
    """Last-value-wins float metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class TickHistogram:
    """Exact integer-valued histogram (one bucket per observed value)."""

    __slots__ = ("name", "counts", "total", "sum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0

    def observe(self, value: int, n: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + n
        self.total += n
        self.sum += value * n

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    @property
    def min(self) -> Optional[int]:
        return min(self.counts) if self.counts else None

    @property
    def max(self) -> Optional[int]:
        return max(self.counts) if self.counts else None

    def percentile(self, p: float) -> Optional[int]:
        """Smallest value covering fraction *p* of observations."""
        if not self.counts:
            return None
        need = p * self.total
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= need:
                return value
        return max(self.counts)

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self.counts.items())

    def cumulative(self, bounds: Sequence[float]
                   ) -> List[Tuple[float, int]]:
        """Fold exact value-buckets into cumulative ``le`` buckets.

        Returns ``[(le, count_at_or_below_le), ...]`` over *bounds*
        plus a terminal ``(inf, total)`` bucket — the canonical
        Prometheus histogram shape (every bucket counts everything at
        or below its boundary, so a scraper can rate() and
        histogram_quantile() it).
        """
        values = sorted(self.counts.items())
        out: List[Tuple[float, int]] = []
        index = 0
        running = 0
        for bound in sorted(bounds):
            while index < len(values) and values[index][0] <= bound:
                running += values[index][1]
                index += 1
            out.append((float(bound), running))
        out.append((math.inf, self.total))
        return out


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, TickHistogram] = {}

    # -- accessors (get-or-create) ------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> TickHistogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = TickHistogram(name)
        return metric

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every metric (stable key order)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value
                       for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "total": h.total,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                    "counts": {str(v): c for v, c in h.items()},
                }
                for n, h in sorted(self.histograms.items())
            },
        }

    def iter_jsonl_objs(self) -> Iterator[Dict[str, Any]]:
        """One JSON object per metric — the ``metrics.jsonl`` shape."""
        for name, counter in sorted(self.counters.items()):
            yield {"metric": name, "type": "counter",
                   "value": counter.value}
        for name, gauge in sorted(self.gauges.items()):
            yield {"metric": name, "type": "gauge", "value": gauge.value}
        for name, hist in sorted(self.histograms.items()):
            yield {"metric": name, "type": "histogram",
                   "total": hist.total, "mean": hist.mean,
                   "min": hist.min, "max": hist.max,
                   "counts": {str(v): c for v, c in hist.items()}}


# -- Prometheus exposition helpers -------------------------------------

#: canonical latency bucket boundaries in microseconds — a geometric
#: ladder from 100 µs (an LRU hit) to 10 s (a cold sweep), shared by
#: every ``*_us`` histogram the serve stack exposes so dashboards can
#: aggregate across daemons
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
    10_000_000)


def format_le(bound: float) -> str:
    """Prometheus ``le`` label text for a bucket boundary."""
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def histogram_quantile(buckets: Sequence[Tuple[float, int]],
                       q: float) -> Optional[float]:
    """Prometheus-style quantile estimate from cumulative buckets.

    Linear interpolation inside the bucket that crosses rank ``q``;
    the open-ended ``+Inf`` bucket reports its lower boundary (exactly
    what PromQL's ``histogram_quantile`` does).  ``None`` when empty.
    """
    ordered = sorted(buckets)
    if not ordered:
        return None
    total = ordered[-1][1]
    if total <= 0:
        return None
    rank = q * total
    prev_bound, prev_count = 0.0, 0
    for bound, count in ordered:
        if count >= rank:
            if math.isinf(bound):
                return prev_bound
            span = count - prev_count
            if span <= 0:
                return bound
            fraction = (rank - prev_count) / span
            return prev_bound + (bound - prev_bound) * fraction
        prev_bound, prev_count = bound, count
    return prev_bound


_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^ #]+)"
    r"(?:\s*#\s*\{(?P<exemplar>[^}]*)\}\s*(?P<exvalue>\S+).*)?$")
_LABEL = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    return {match.group(1): match.group(2)
            for match in _LABEL.finditer(text)}


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse the text exposition format back into a structured dict.

    Returns ``{"types": {metric: type}, "samples": {metric: value},
    "histograms": {base: {"buckets": [(le, count)], "sum": s,
    "count": n, "exemplars": {le_label: {...}}}}}``.  This is both the
    scraper the ops dashboard uses against ``/metrics`` and the
    parse-back oracle of the exposition tests: if this can't ingest
    the output, neither can Prometheus.
    """
    types: Dict[str, str] = {}
    samples: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}

    def hist(base: str) -> Dict[str, Any]:
        return histograms.setdefault(
            base, {"buckets": [], "sum": 0.0, "count": 0,
                   "exemplars": {}})

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            parts = rest.split()
            if len(parts) == 2:
                types[parts[0]] = parts[1]
            continue
        if line.startswith("#"):
            continue
        match = _PROM_LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = float(match.group("value"))
        if name.endswith("_bucket") and "le" in labels:
            base = name[:-len("_bucket")]
            le_text = labels["le"]
            le = math.inf if le_text == "+Inf" else float(le_text)
            hist(base)["buckets"].append((le, int(value)))
            if match.group("exemplar"):
                exemplar = _parse_labels(match.group("exemplar"))
                exemplar["value"] = float(match.group("exvalue"))
                hist(base)["exemplars"][le_text] = exemplar
        elif name.endswith("_sum") and name[:-4] in histograms:
            hist(name[:-4])["sum"] = value
        elif name.endswith("_count") and name[:-6] in histograms:
            hist(name[:-6])["count"] = int(value)
        else:
            samples[name] = value
    return {"types": types, "samples": samples,
            "histograms": histograms}
