"""Metrics registry: counters, gauges, tick-resolution histograms.

The registry is the structured home for everything a simulation can
measure.  :class:`~repro.analysis.stats.SimStats` — the flat dataclass
every bench and report reads — is populated *through* the registry at
the end of a run (see ``SimStats.populate_from``), and the registry
itself is what the exporters snapshot, so the CLI's metrics dump, the
campaign JSON and the pytest benches all agree by construction.

Histograms are integer-bucketed at tick resolution (one bucket per
tick value), which matches the simulator's native time base: the
slack-per-op and issue-to-execute-latency distributions come out
exact, not binned.  Histogram observation only happens on traced runs
(the simulator guards it together with event emission), so the
untraced hot loop pays nothing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        """Overwrite (used when mirroring an externally-kept count)."""
        self.value = value


class Gauge:
    """Last-value-wins float metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class TickHistogram:
    """Exact integer-valued histogram (one bucket per observed value)."""

    __slots__ = ("name", "counts", "total", "sum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0

    def observe(self, value: int, n: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + n
        self.total += n
        self.sum += value * n

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    @property
    def min(self) -> Optional[int]:
        return min(self.counts) if self.counts else None

    @property
    def max(self) -> Optional[int]:
        return max(self.counts) if self.counts else None

    def percentile(self, p: float) -> Optional[int]:
        """Smallest value covering fraction *p* of observations."""
        if not self.counts:
            return None
        need = p * self.total
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= need:
                return value
        return max(self.counts)

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self.counts.items())


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, TickHistogram] = {}

    # -- accessors (get-or-create) ------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> TickHistogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = TickHistogram(name)
        return metric

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every metric (stable key order)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value
                       for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "total": h.total,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                    "counts": {str(v): c for v, c in h.items()},
                }
                for n, h in sorted(self.histograms.items())
            },
        }

    def iter_jsonl_objs(self) -> Iterator[Dict[str, Any]]:
        """One JSON object per metric — the ``metrics.jsonl`` shape."""
        for name, counter in sorted(self.counters.items()):
            yield {"metric": name, "type": "counter",
                   "value": counter.value}
        for name, gauge in sorted(self.gauges.items()):
            yield {"metric": name, "type": "gauge", "value": gauge.value}
        for name, hist in sorted(self.histograms.items()):
            yield {"metric": name, "type": "histogram",
                   "total": hist.total, "mean": hist.mean,
                   "min": hist.min, "max": hist.max,
                   "counts": {str(v): c for v, c in hist.items()}}
