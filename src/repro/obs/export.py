"""Exporters: JSONL event dumps, Chrome trace-event JSON, metrics.

The Chrome trace-event output follows the (Perfetto-compatible) JSON
array format: ``{"traceEvents": [...]}`` where

* each **FU class** is one named track (``thread_name`` metadata on a
  stable ``tid``),
* each **uop execution window** is one complete slice (``"ph": "X"``)
  whose ``ts``/``dur`` are the window's start tick and tick length —
  tick-for-tick the values :func:`repro.core.audit.audit_run` checks,
* transparent hand-offs (mid-cycle recycled starts), 2-cycle holds,
  GP-speculative grants and replays appear as instant markers
  (``"ph": "i"``) on the owning FU track,
* per-cycle stalls land on a dedicated ``sched`` track.

Time unit: **1 trace µs = 1 tick** (the paper's 1/8-cycle quantum).
Perfetto renders any consistent unit; documenting the convention in the
trace's process name keeps screenshots self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from .events import Event, EventKind, events_from_jsonl
from .metrics import MetricsRegistry

PathLike = Union[str, Path]

#: markers rendered as instants on the owning FU track
_FU_MARKERS = {
    EventKind.HOLD: "hold (2-cycle FU occupancy)",
    EventKind.GP_GRANT: "eager grandparent grant",
    EventKind.LA_REPLAY: "last-arrival replay",
    EventKind.WIDTH_MISPREDICT: "width mispredict replay",
}

#: markers rendered on the scheduler track (cycle-, not uop-bound)
_SCHED_MARKERS = {
    EventKind.FU_STALL: "FU stall",
    EventKind.DISPATCH_STALL: "dispatch stall",
}


def write_events_jsonl(events: Iterable[Event],
                       path: PathLike) -> Path:
    """Dump *events* one JSON object per line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_json_obj(),
                                separators=(",", ":")))
            fh.write("\n")
    return path


def read_events_jsonl(path: PathLike) -> List[Event]:
    """Load an event stream previously written by
    :func:`write_events_jsonl`."""
    with open(path, "r", encoding="utf-8") as fh:
        return events_from_jsonl(fh)


def _fu_tracks(events: Sequence[Event]) -> List[str]:
    """Stable FU-track order: META pool order, then discovery order."""
    tracks: List[str] = []
    for event in events:
        if event.kind is EventKind.META:
            tracks.extend(fu for fu in event.data.get("pools", {})
                          if fu not in tracks)
        elif event.kind is EventKind.EXEC_WINDOW:
            fu = event.data.get("fu")
            if fu is not None and fu not in tracks:
                tracks.append(fu)
    return tracks


def chrome_trace(events: Sequence[Event], *,
                 pid: int = 1) -> Dict[str, Any]:
    """Render an event stream as a Chrome trace-event JSON document."""
    tracks = _fu_tracks(events)
    tid_of = {fu: i + 1 for i, fu in enumerate(tracks)}
    sched_tid = len(tracks) + 1

    meta = next((e for e in events if e.kind is EventKind.META), None)
    name = "redsoc-core"
    if meta is not None:
        name = (f"redsoc {meta.data.get('core', '?')}/"
                f"{meta.data.get('mode', '?')} — "
                f"{meta.data.get('trace', '?')} (1 us = 1 tick, "
                f"{meta.data.get('ticks_per_cycle', '?')} ticks/cycle)")

    out: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": name},
    }]
    for fu, tid in tid_of.items():
        out.append({"name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": f"FU {fu}"}})
        out.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"sort_index": tid}})
    out.append({"name": "thread_name", "ph": "M", "pid": pid,
                "tid": sched_tid, "args": {"name": "sched"}})

    #: last known FU track per uop, for uop-bound markers whose payload
    #: does not repeat the FU class
    fu_of_seq: Dict[int, int] = {}

    for event in events:
        kind = event.kind
        if kind is EventKind.EXEC_WINDOW:
            data = event.data
            tid = tid_of.get(data["fu"], sched_tid)
            fu_of_seq[event.seq] = tid
            start = data["start"]
            slice_args = {
                "seq": event.seq,
                "issue_cycle": data["issue"],
                "ex_ticks": data["ex"],
                "transparent": data["transparent"],
                "recycled": data["recycled"],
                "eager": data["eager"],
                "hold": data["hold"],
            }
            out.append({
                "name": data["op"], "cat": "exec", "ph": "X",
                "pid": pid, "tid": tid,
                "ts": start, "dur": data["end"] - start,
                "args": slice_args,
            })
            if data["recycled"]:
                # the defining moment of the paper: a consumer started
                # mid-cycle, at the instant its producer stabilised
                out.append({
                    "name": "transparent hand-off", "cat": "recycle",
                    "ph": "i", "s": "t", "pid": pid, "tid": tid,
                    "ts": start, "args": {"seq": event.seq},
                })
        elif kind in _FU_MARKERS:
            tid = fu_of_seq.get(event.seq, sched_tid)
            ts = event.data.get("tick",
                                event.data.get("start", event.cycle))
            out.append({
                "name": _FU_MARKERS[kind], "cat": kind.value,
                "ph": "i", "s": "t", "pid": pid, "tid": tid,
                "ts": ts, "args": {"seq": event.seq, **event.data},
            })
        elif kind in _SCHED_MARKERS:
            ts = event.data.get("tick", event.cycle)
            out.append({
                "name": _SCHED_MARKERS[kind], "cat": kind.value,
                "ph": "i", "s": "t", "pid": pid, "tid": sched_tid,
                "ts": ts, "args": dict(event.data),
            })

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[Event], path: PathLike, *,
                       pid: int = 1) -> Path:
    """Write :func:`chrome_trace` output to *path* (returns it)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events, pid=pid), fh)
        fh.write("\n")
    return path


def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """Metrics registry as JSONL text (one metric per line)."""
    return "".join(json.dumps(obj, separators=(",", ":")) + "\n"
                   for obj in registry.iter_jsonl_objs())


def write_metrics_jsonl(registry: MetricsRegistry,
                        path: PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_jsonl(registry), encoding="utf-8")
    return path


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema check for a trace document; returns problem strings.

    Checks the subset of the trace-event format that Perfetto's JSON
    importer requires: a ``traceEvents`` list whose members carry
    ``name``/``ph``/``pid``/``tid``, integer ``ts`` on every timed
    event, non-negative integer ``dur`` on complete ("X") slices, and
    a scope on instants.  Used by the tests and the CLI.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"[{i}] not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                problems.append(f"[{i}] missing {field!r}")
        ph = ev.get("ph")
        if ph in ("X", "i", "B", "E", "C"):
            if not isinstance(ev.get("ts"), int):
                problems.append(f"[{i}] ph={ph} without integer ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"[{i}] X slice with bad dur {dur!r}")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            problems.append(f"[{i}] instant without scope")
    return problems


def load_chrome_trace(path: PathLike) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def exec_slices(doc: Dict[str, Any]) -> Dict[int, Dict[str, int]]:
    """Map uop seq → ``{"start": ts, "end": ts+dur}`` of exec slices."""
    windows: Dict[int, Dict[str, int]] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") == "X" and ev.get("cat") == "exec":
            seq = ev["args"]["seq"]
            windows[seq] = {"start": ev["ts"],
                            "end": ev["ts"] + ev["dur"]}
    return windows


# re-exported for __init__ convenience
__all__ = [
    "chrome_trace", "exec_slices", "load_chrome_trace",
    "metrics_to_jsonl", "read_events_jsonl", "validate_chrome_trace",
    "write_chrome_trace", "write_events_jsonl", "write_metrics_jsonl",
]
