"""Structured JSON logging with per-request correlation ids.

One log line = one JSON object: ``{"ts", "level", "component",
"event", ...fields}``.  The point is correlation — every serve-stack
line that belongs to a request carries its ``trace_id``, so a 5xx in
the daemon log resolves to the exported span tree of the exact request
that failed, and a nightly-fuzz failure line names the session and
program that produced it.

Two deliberate design constraints:

* **explicit objects, no global configuration** — a
  :class:`JsonLogger` is constructed and passed, exactly like the
  tracer in :mod:`repro.obs.trace`; code without a logger logs
  nothing and pays one ``is None`` check, which is what keeps the
  serve hot path inside its throughput gates when logging is off;
* **machine-first** — values are JSON scalars, keys are stable, and
  the line is self-contained; ``jq`` is the intended reader, humans
  get the ops dashboard instead.

:class:`JsonLogHandler` bridges stdlib :mod:`logging` records (the
campaign cache's corrupt-entry warnings, third-party libraries) into
the same stream, preserving ``extra={...}`` fields.
"""

from __future__ import annotations

import io
import json
import logging
import sys
import threading
import time
from typing import Any, Dict, IO, List, Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _scrub(value: Any) -> Any:
    """Best-effort JSON-safe coercion (never raises from a log call)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    return repr(value)


class JsonLogger:
    """Structured logger writing one JSON object per line.

    *streams* is a list of open text handles (stderr, a log file, or
    both); writes are line-atomic under a shared lock.  :meth:`bind`
    returns a child logger whose lines always carry the bound fields —
    the idiom for request correlation::

        req_log = logger.bind(trace_id=ctx.trace_id, path=path)
        req_log.warning("request.failed", status=503)
    """

    def __init__(self, streams: Optional[List[IO[str]]] = None, *,
                 component: str = "",
                 min_level: str = "info",
                 clock=time.time,
                 _bound: Optional[Dict[str, Any]] = None,
                 _lock: Optional[threading.Lock] = None) -> None:
        self.streams = list(streams) if streams else []
        self.component = component
        self.min_level = LEVELS.get(min_level, 20)
        self._clock = clock
        self._bound = dict(_bound) if _bound else {}
        self._lock = _lock if _lock is not None else threading.Lock()

    def bind(self, **fields: Any) -> "JsonLogger":
        bound = dict(self._bound)
        bound.update(fields)
        child = JsonLogger(
            self.streams, component=self.component,
            clock=self._clock, _bound=bound, _lock=self._lock)
        child.min_level = self.min_level
        return child

    @property
    def enabled(self) -> bool:
        return bool(self.streams)

    # -- emission ------------------------------------------------------

    def log(self, level: str, event: str, **fields: Any) -> None:
        if not self.streams or \
                LEVELS.get(level, 20) < self.min_level:
            return
        obj: Dict[str, Any] = {
            "ts": round(self._clock(), 6),
            "level": level,
            "event": event,
        }
        if self.component:
            obj["component"] = self.component
        for key, value in self._bound.items():
            obj[key] = _scrub(value)
        for key, value in fields.items():
            obj[key] = _scrub(value)
        line = json.dumps(obj, separators=(",", ":"),
                          sort_keys=False) + "\n"
        with self._lock:
            for stream in self.streams:
                try:
                    stream.write(line)
                    stream.flush()
                except (ValueError, OSError):
                    pass    # a closed log stream never takes down serve

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def stderr_logger(component: str = "",
                  min_level: str = "info") -> JsonLogger:
    """The common construction: JSON lines on stderr."""
    return JsonLogger([sys.stderr], component=component,
                      min_level=min_level)


#: stdlib LogRecord attributes that are bookkeeping, not payload
_RECORD_FIELDS = frozenset(vars(logging.LogRecord(
    "", 0, "", 0, "", (), None)).keys()) | {"message", "asctime",
                                            "taskName"}


class JsonLogHandler(logging.Handler):
    """Routes stdlib :mod:`logging` records into a :class:`JsonLogger`.

    ``extra={...}`` fields on the record survive as JSON fields, so
    e.g. the campaign cache's corrupt-entry warning carries its cache
    key and path as structured data instead of a formatted string.
    """

    def __init__(self, logger: JsonLogger,
                 level: int = logging.NOTSET) -> None:
        super().__init__(level)
        self.json_logger = logger

    def emit(self, record: logging.LogRecord) -> None:
        try:
            level = record.levelname.lower()
            if level not in LEVELS:
                level = "info"
            fields = {key: value
                      for key, value in vars(record).items()
                      if key not in _RECORD_FIELDS}
            self.json_logger.log(
                level, record.name,
                message=record.getMessage(), **fields)
        except Exception:   # logging must never raise
            self.handleError(record)


def capture_logger() -> "tuple[JsonLogger, io.StringIO]":
    """An in-memory logger plus its buffer (test helper)."""
    buffer = io.StringIO()
    return JsonLogger([buffer]), buffer


def parse_log_lines(text: str) -> List[Dict[str, Any]]:
    """Parse JSONL log output back into objects (test/CI helper)."""
    objs: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            objs.append(json.loads(line))
    return objs
