"""Comparator systems from Sec. VI-D: timing speculation and fusion."""

from .mos import simulate_mos
from .ts import TSConfig, TSResult, analyze_ts

__all__ = ["TSConfig", "TSResult", "analyze_ts", "simulate_mos"]
