"""Operation-fusion comparator — Sec. VI-D's "MOS".

MOS ("Multiple Operations in a Single cycle") dynamically combines
dependent operations into one clock cycle when their computation times
fit together — e.g. two consecutive logical operations (roughly 50–55 %
data slack each) can execute back-to-back within a single period.

Unlike ReDSOC, MOS

* cannot let execution *cross* a clock edge (no transparent FFs, so the
  fused pair must latch at the next edge), and
* therefore cannot accumulate sub-cycle slack across long sequences —
  a chain of 5-tick shifts (10 ticks a pair) simply does not fit.

MOS runs inside the main timing engine as
:data:`~repro.core.config.RecycleMode.MOS`: the same eager co-issue
machinery supplies the partner op, and the fit check replaces the slack
threshold (see :func:`repro.core.scheduler.eager_issue_allowed`).  This
module is the convenience entry point used by the comparison benches.
"""

from __future__ import annotations

from repro.core.config import CoreConfig, RecycleMode
from repro.core.cpu import SimResult, simulate


def simulate_mos(workload, config: CoreConfig) -> SimResult:
    """Run *workload* under the MOS fusion model on *config*'s core."""
    return simulate(workload, config.with_mode(RecycleMode.MOS))
