"""Timing-speculation (Razor-style) comparator — Sec. VI-D's "TS".

The paper's TS baseline statically raises the clock frequency as far as
the application's timing-error rate allows (kept between 0.01 % and
1 %), with recovery cost *not* modelled — i.e. deliberately optimistic.

We reproduce that analytically.  For a given trace we build the
distribution of per-cycle path delays the speculative clock must cover:

* every single-cycle ALU/SIMD operation contributes its *actual* raw
  combinational delay (from the structural timing model, at the true
  operand width — TS sees real data, not predictions);
* every memory operation contributes an AGU + cache-stage delay, every
  multi-cycle op its pipeline-stage delay, and every cycle contributes
  fetch/scheduler stage samples — these conventional stages were
  designed *to* the clock and retain only a small design margin, which
  is exactly why the paper argues TS must be configured conservatively
  ("bounded by the possibility of timing errors from every computation,
  in every synchronous EU/op-stage, and on every clock cycle").

The speculative period is the smallest that keeps the fraction of
violating samples within the error budget; the reported speedup is the
full frequency ratio (optimistic: memory latencies would really stay
constant in nanoseconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.opcodes import OpClass, SIMD_SINGLE_CYCLE_OPS
from repro.pipeline.trace import Trace
from repro.timing.alu_timing import scalar_op_delay_ps
from repro.timing.gates import DEFAULT_TECH, TechParams
from repro.timing.simd_timing import simd_op_delay_ps


@dataclass(frozen=True)
class TSConfig:
    """Knobs of the analytic TS model."""

    #: acceptable timing-error rate (paper window: 1e-4 .. 1e-2);
    #: the default sits at the aggressive end — optimistic for TS
    error_budget: float = 1e-2
    #: conventional-stage delay as a fraction of the clock: fetch,
    #: scheduler-select, cache SRAM and FP/MUL pipeline stages are
    #: designed to the cycle and keep only this much margin (the
    #: scheduling loop is "near timing critical", Sec. IV-E)
    stage_margin: float = 0.02
    #: AGU delay: a full-width effective-address add
    agu_margin: float = 0.20
    tech: TechParams = DEFAULT_TECH


@dataclass
class TSResult:
    """Outcome of the TS analysis for one trace."""

    period_ps: float
    error_rate: float
    speedup: float


def _delay_samples(trace: Trace, config: TSConfig) -> List[float]:
    """Per-cycle critical-delay samples the speculative clock must cover."""
    tech = config.tech
    setup = tech.setup_ps
    stage = tech.clock_ps * (1.0 - config.stage_margin)
    agu = tech.clock_ps * (1.0 - config.agu_margin)
    samples: List[float] = []
    for entry in trace.entries:
        instr = entry.instr
        cls = instr.cls
        if cls is OpClass.ALU:
            samples.append(setup + scalar_op_delay_ps(
                instr.op, effective_width=entry.op_width,
                flex_shift=instr.has_flexible_shift()))
        elif cls is OpClass.SIMD and instr.op in SIMD_SINGLE_CYCLE_OPS:
            samples.append(setup + simd_op_delay_ps(instr.op, instr.dtype))
        elif cls in (OpClass.LOAD, OpClass.STORE):
            samples.append(agu)
            samples.append(stage)      # cache SRAM access stage
        elif cls in (OpClass.MUL, OpClass.DIV, OpClass.FP,
                     OpClass.SIMD):
            samples.append(stage)      # multi-cycle pipeline stage
        elif cls is OpClass.BRANCH:
            samples.append(stage)      # fetch/redirect stage
    # front-end + scheduler stages toggle every cycle; approximate one
    # sample per instruction (sustained IPC ~1 lower bound keeps this
    # conservative toward TS)
    samples.extend([stage] * len(trace.entries))
    return samples


def analyze_ts(trace: Trace, config: TSConfig = TSConfig()) -> TSResult:
    """Best static TS operating point for *trace*.

    Finds the smallest clock period whose violation rate stays within
    the error budget and reports the frequency-ratio speedup.
    """
    samples = sorted(_delay_samples(trace, config), reverse=True)
    total = len(samples)
    budget = max(0, int(config.error_budget * total) - 1)
    # the (budget+1)-th largest sample must fit: every larger one errors
    period = samples[budget] if budget < total else samples[-1]
    period = min(period, config.tech.clock_ps)
    violations = sum(1 for s in samples if s > period)
    return TSResult(period_ps=period,
                    error_rate=violations / total if total else 0.0,
                    speedup=config.tech.clock_ps / period - 1.0)
