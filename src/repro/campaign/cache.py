"""Persistent, content-addressed simulation-result cache.

Every cache entry is one JSON file under ``.redsoc-cache/`` named by a
stable SHA-256 key over three components:

1. the **trace fingerprint** — a digest of every dynamic instruction
   (opcode, operands, widths, memory addresses, branch outcomes), so a
   workload or scale change produces a different key;
2. the **config fingerprint** — the canonicalised
   :class:`~repro.core.config.CoreConfig` including mode, scheduler
   flavour and every ablation knob;
3. the **model version** — an explicit salt plus a digest of the
   timing-model source tree, so *any* simulator change invalidates the
   whole cache cleanly instead of serving stale cycle counts.

Writes are atomic (tmp file + ``os.replace``), so concurrent workers
racing on the same key are safe: last writer wins with identical
content (the model is deterministic).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import asdict, fields, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Optional

LOG = logging.getLogger(__name__)

from repro.analysis.stats import OpDistribution, SimStats
from repro.core.config import CoreConfig
from repro.core.cpu import SimResult, simulate
from repro.core.lower import lowering_digest
from repro.pipeline.trace import Trace

#: bump to force a cold cache even when no source file changed
#: (e.g. after a semantics-preserving refactor you do not trust yet)
MODEL_SALT = "redsoc-campaign-1"

#: environment override for the cache location (used by CI and tests)
CACHE_DIR_ENV = "REDSOC_CACHE_DIR"

#: default cache directory, relative to the current working directory
DEFAULT_CACHE_DIRNAME = ".redsoc-cache"

#: JSON payload schema version
PAYLOAD_SCHEMA = 1

#: repro subpackages whose source participates in the model version;
#: workloads are deliberately absent — the trace fingerprint already
#: captures everything a workload change can affect
_MODEL_PACKAGES = ("analysis", "baselines", "core", "isa", "memory",
                   "pipeline", "timing")

#: subpackages that determine a dynamic trace's *content*; the trace
#: fingerprint index (which lets warm runs skip trace regeneration)
#: must be invalidated when any of these change
_TRACE_PACKAGES = ("isa", "pipeline", "workloads")

_digest_memo: Dict[tuple, str] = {}


def _source_digest(packages: tuple = _MODEL_PACKAGES) -> str:
    """Digest of the given subpackages' sources (memoised per process)."""
    memo = _digest_memo.get(packages)
    if memo is None:
        root = Path(__file__).resolve().parent.parent
        sha = hashlib.sha256()
        for package in packages:
            for path in sorted((root / package).rglob("*.py")):
                sha.update(path.relative_to(root).as_posix().encode())
                sha.update(path.read_bytes())
        memo = _digest_memo[packages] = sha.hexdigest()
    return memo


def model_version(salt: Optional[str] = None) -> str:
    """Combined salt + source digest that namespaces every cache key."""
    return f"{salt if salt is not None else MODEL_SALT}:{_source_digest()}"


def trace_version(salt: Optional[str] = None) -> str:
    """Version namespace of the trace-fingerprint index."""
    return (f"{salt if salt is not None else MODEL_SALT}:"
            f"{_source_digest(_TRACE_PACKAGES)}")


def _canonical(value: Any) -> Any:
    """Reduce a config value to JSON-stable primitives."""
    if isinstance(value, Enum):
        return value.value
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in fields(value)}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def config_fingerprint(config: CoreConfig) -> str:
    """Stable digest of a full core parameterisation (mode included)."""
    blob = json.dumps(_canonical(config), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def trace_fingerprint(trace: Trace) -> str:
    """Stable digest of a dynamic trace's timing-relevant content.

    Memoised on the trace object: campaigns and bench sessions probe
    the cache once per (core, mode) for the same trace.
    """
    memo = getattr(trace, "_fingerprint", None)
    if memo is not None:
        return memo
    sha = hashlib.sha256()
    sha.update(trace.name.encode())
    for entry in trace.entries:
        instr = entry.instr
        sha.update(repr((
            instr.op.name,
            instr.rd and repr(instr.rd), instr.rn and repr(instr.rn),
            instr.rm and repr(instr.rm), instr.ra and repr(instr.ra),
            instr.rs and repr(instr.rs),
            instr.imm, instr.shift.name, instr.shift_amt,
            instr.set_flags, instr.cond.name, instr.target,
            instr.dtype and instr.dtype.name, instr.scale,
            entry.pc, entry.next_pc, entry.taken, entry.op_width,
            entry.mem_addr, entry.mem_size, entry.is_store,
        )).encode())
    digest = sha.hexdigest()
    trace._fingerprint = digest
    return digest


def result_key_from_fingerprint(fingerprint: str, config: CoreConfig, *,
                                salt: Optional[str] = None) -> str:
    """Cache key from a pre-computed trace fingerprint.

    The engine identifier and the compiled-lowering source digest are
    folded in *explicitly* (they are also part of the config and model
    fingerprints): switching ``engine=`` or editing the lowering /
    compiled backend must never serve a stale cached result, and this
    line is the one the invalidation test pins.
    """
    sha = hashlib.sha256()
    sha.update(model_version(salt).encode())
    sha.update(fingerprint.encode())
    sha.update(config_fingerprint(config).encode())
    sha.update(f"engine:{config.engine}:{lowering_digest()}".encode())
    return sha.hexdigest()[:32]


def result_key(trace: Trace, config: CoreConfig, *,
               salt: Optional[str] = None) -> str:
    """Cache key for simulating *trace* on *config*."""
    return result_key_from_fingerprint(trace_fingerprint(trace), config,
                                       salt=salt)


def trace_index_key(suite: str, bench: str,
                    scale: Optional[int] = None, *,
                    salt: Optional[str] = None) -> str:
    """Index key mapping a (suite, bench, scale) job to its trace
    fingerprint, namespaced by the trace-generation source version."""
    blob = f"{trace_version(salt)}|{suite}|{bench}|{scale!r}"
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def default_cache_dir() -> Path:
    """Cache root: ``$REDSOC_CACHE_DIR`` or ``./.redsoc-cache``."""
    override = os.environ.get(CACHE_DIR_ENV)
    return Path(override) if override else Path(DEFAULT_CACHE_DIRNAME)


def result_to_payload(result: SimResult) -> Dict[str, Any]:
    """Serialise a :class:`SimResult` to a JSON-safe dict."""
    stats = asdict(result.stats)
    return {
        "schema": PAYLOAD_SCHEMA,
        "name": result.name,
        "core": result.config.name,
        "mode": result.config.mode.value,
        "cycles": result.stats.cycles,
        "ipc": result.stats.ipc,
        "stats": stats,
    }


def payload_to_result(payload: Dict[str, Any],
                      config: CoreConfig) -> SimResult:
    """Rebuild a :class:`SimResult` from a cached payload."""
    raw = dict(payload["stats"])
    distribution = OpDistribution(counts=dict(raw.pop("distribution")["counts"]))
    stats = SimStats(distribution=distribution, **raw)
    return SimResult(name=payload["name"], config=config, stats=stats)


class ResultCache:
    """JSON-per-key result store with hit/miss/corruption accounting.

    The cache directory is shared between campaign runs and the serve
    daemon's worker processes, so reads must tolerate anything another
    writer (or a crash) can leave behind: a torn or truncated entry, a
    non-JSON blob, a payload of the wrong shape.  All of those are
    treated as misses, counted in ``corrupt``, surfaced through the
    optional *metrics* registry (``cache.corrupt_entries``) and the
    module logger, and the offending file is unlinked so the next
    write replaces it cleanly.
    """

    def __init__(self, root: Optional[Path] = None, *,
                 metrics=None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.metrics = metrics

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _note_corrupt(self, path: Path, reason: str) -> None:
        self.corrupt += 1
        if self.metrics is not None:
            self.metrics.counter("cache.corrupt_entries").inc()
        LOG.warning("corrupt cache entry %s (%s); treating as a miss",
                    path, reason,
                    extra={"entry": str(path), "reason": reason,
                           "corrupt_total": self.corrupt})
        try:
            path.unlink()
        except OSError:
            pass    # another reader may have unlinked it already

    def _load(self, path: Path) -> Optional[Dict[str, Any]]:
        """Read one JSON-object file; corrupt entries become ``None``."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) \
                as exc:
            self._note_corrupt(path, f"{type(exc).__name__}: {exc}")
            return None
        except OSError as exc:      # unreadable, not provably corrupt
            LOG.warning("unreadable cache entry %s (%s)", path, exc)
            return None
        if not isinstance(payload, dict):
            self._note_corrupt(
                path, f"expected a JSON object, got "
                      f"{type(payload).__name__}")
            return None
        return payload

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a payload, counting the probe as a hit or miss."""
        payload = self._load(self.path(key))
        if payload is None or payload.get("schema") != PAYLOAD_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist *payload* under *key*.

        Write-to-tempfile + ``os.replace`` + an ``fsync`` before the
        rename: concurrent readers either see the old entry or the
        complete new one, never a torn write — even across a crash.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- trace-fingerprint index -------------------------------------
    #
    # Workload builders are deterministic, so a (suite, bench, scale)
    # job always yields the same trace for a given source version.
    # Caching that mapping lets a fully-warm campaign answer every job
    # from disk without regenerating (or re-hashing) a single trace.

    def trace_index_path(self, tkey: str) -> Path:
        return self.root / "traces" / f"{tkey}.json"

    def get_trace_fingerprint(self, tkey: str) -> Optional[str]:
        path = self.trace_index_path(tkey)
        payload = self._load(path)
        if payload is None:
            return None
        fingerprint = payload.get("fingerprint")
        if not isinstance(fingerprint, str):
            self._note_corrupt(path, "index entry has no fingerprint")
            return None
        return fingerprint

    def put_trace_fingerprint(self, tkey: str, fingerprint: str) -> None:
        index_dir = self.root / "traces"
        index_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(index_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({"fingerprint": fingerprint}, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.trace_index_path(tkey))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cache entry; return how many results were
        removed (the trace index is dropped as well)."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
            for path in self.root.glob("traces/*.json"):
                path.unlink()
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))


def cached_simulate(trace: Trace, config: CoreConfig,
                    cache: ResultCache, *,
                    force: bool = False) -> SimResult:
    """Simulate *trace* on *config*, reading/writing through *cache*.

    With ``force=True`` the probe is skipped (the entry is still
    rewritten), which is how ``campaign run --force`` refreshes a cache
    without clearing unrelated keys.
    """
    key = result_key(trace, config)
    if not force:
        payload = cache.get(key)
        if payload is not None:
            return payload_to_result(payload, config)
    else:
        cache.misses += 1
    result = simulate(trace, config)
    cache.put(key, result_to_payload(result))
    return result
