"""Campaign job enumeration.

A :class:`CampaignJob` names one simulation — ``(suite, benchmark,
core, mode)`` plus an optional scale override — without holding any
heavyweight state, so jobs pickle cheaply across process boundaries.
Traces and configs are materialised lazily (and memoised per process)
by :func:`job_trace` / :func:`job_config`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import CORES, CoreConfig, ENGINES, RecycleMode
from repro.pipeline.trace import Trace, generate_trace
from repro.workloads.suites import SUITES, default_scale

#: evaluation order used by every figure (matches the bench harness)
SUITE_ORDER: Tuple[str, ...] = ("spec", "mibench", "ml")
CORE_ORDER: Tuple[str, ...] = ("big", "medium", "small")
MODE_ORDER: Tuple[str, ...] = tuple(m.value for m in RecycleMode)

#: one small benchmark per suite — the CI smoke campaign
SMOKE_BENCHMARKS: Dict[str, str] = {
    "spec": "soplex",
    "mibench": "bitcnt",
    "ml": "pool0",
}


@dataclass(frozen=True, order=True)
class CampaignJob:
    """One (suite, benchmark, core, mode) simulation request.

    ``engine`` picks the simulation backend; ``None`` means the config
    default.  Every registered engine is cycle-identical (CI-enforced),
    so the engine is not part of a job's identity — labels and
    regression-reference keys stay engine-free on purpose, which is
    what lets the backend-equivalence matrix diff engines against one
    shared reference.
    """

    suite: str
    bench: str
    core: str
    mode: str
    scale: Optional[int] = None
    engine: Optional[str] = None

    @property
    def label(self) -> str:
        return f"{self.suite}/{self.bench}@{self.core}:{self.mode}"


def _validate(kind: str, requested: Sequence[str],
              known: Sequence[str]) -> List[str]:
    unknown = [name for name in requested if name not in known]
    if unknown:
        raise ValueError(
            f"unknown {kind} {unknown!r}; choose from {sorted(known)}")
    return list(requested)


def enumerate_jobs(suites: Optional[Sequence[str]] = None,
                   benchmarks: Optional[Sequence[str]] = None,
                   cores: Optional[Sequence[str]] = None,
                   modes: Optional[Sequence[str]] = None,
                   scale: Optional[int] = None,
                   engine: Optional[str] = None) -> List[CampaignJob]:
    """Expand a selection into evaluation-ordered jobs.

    ``None`` means "all".  *benchmarks* filters within the selected
    suites; a benchmark name that matches no selected suite is an
    error, so typos fail loudly instead of silently shrinking the run.
    *engine* pins every job to one simulation backend.
    """
    suites = _validate("suite(s)", suites or SUITE_ORDER, tuple(SUITES))
    cores = _validate("core(s)", cores or CORE_ORDER, tuple(CORES))
    modes = _validate("mode(s)", modes or MODE_ORDER, MODE_ORDER)
    if engine is not None:
        _validate("engine(s)", [engine], ENGINES.names())

    if benchmarks is not None:
        all_benches = {b for s in suites for b in SUITES[s]}
        _validate("benchmark(s)", benchmarks, tuple(all_benches))

    jobs: List[CampaignJob] = []
    for suite in suites:
        for bench in SUITES[suite]:
            if benchmarks is not None and bench not in benchmarks:
                continue
            for core in cores:
                for mode in modes:
                    jobs.append(CampaignJob(suite, bench, core, mode,
                                            scale=scale, engine=engine))
    return jobs


def smoke_jobs(modes: Optional[Sequence[str]] = None,
               scale: Optional[int] = None,
               engine: Optional[str] = None) -> List[CampaignJob]:
    """The CI smoke set: one small benchmark per suite, small core."""
    jobs: List[CampaignJob] = []
    for suite in SUITE_ORDER:
        jobs.extend(enumerate_jobs(
            suites=[suite], benchmarks=[SMOKE_BENCHMARKS[suite]],
            cores=["small"], modes=modes, scale=scale, engine=engine))
    return jobs


#: per-process trace memo so a worker simulating several (core, mode)
#: combinations of one benchmark regenerates its trace only once
_TRACE_MEMO: Dict[Tuple[str, str, Optional[int]], Trace] = {}


def job_trace(job: CampaignJob) -> Trace:
    """Materialise (and memoise) the dynamic trace for *job*."""
    memo_key = (job.suite, job.bench, job.scale)
    trace = _TRACE_MEMO.get(memo_key)
    if trace is None:
        builder = SUITES[job.suite][job.bench]
        if job.scale is not None:
            kwargs: Dict[str, int] = {"scale": job.scale}
        else:
            kwargs = default_scale(job.suite, job.bench)
        trace = generate_trace(builder(**kwargs))
        _TRACE_MEMO[memo_key] = trace
    return trace


def job_config(job: CampaignJob) -> CoreConfig:
    """Table-I preset for *job*'s core, switched to *job*'s mode (and
    pinned to *job*'s engine when one was requested)."""
    config = CORES[job.core].with_mode(RecycleMode(job.mode))
    if job.engine is not None:
        config = replace(config, engine=job.engine)
    return config
