"""Campaign runner: batch simulation with a persistent result cache.

The full paper evaluation replays every (suite, benchmark, core, mode)
combination through the pure-Python cycle model.  This package treats
those simulations as *jobs*: enumerable, content-addressed, cacheable
and shardable across worker processes.

* :mod:`repro.campaign.cache` — persistent on-disk result cache keyed by
  a stable hash of (trace, core config, model version),
* :mod:`repro.campaign.jobs` — job enumeration from the workload
  registry and Table-I core presets,
* :mod:`repro.campaign.runner` — serial or process-pool execution,
* :mod:`repro.campaign.report` — ``BENCH_campaign.json`` plus the
  human-readable summary table,
* :mod:`repro.campaign.cli` — ``python -m repro.campaign run|report|clean``.

The pytest benches (``benchmarks/conftest.py``) read through the same
cache, so CLI campaigns and bench sessions share simulation runs.
"""

from .cache import (
    CACHE_DIR_ENV,
    ResultCache,
    cached_simulate,
    config_fingerprint,
    default_cache_dir,
    model_version,
    payload_to_result,
    result_key,
    result_key_from_fingerprint,
    result_to_payload,
    trace_fingerprint,
    trace_index_key,
    trace_version,
)
from .jobs import (
    CORE_ORDER,
    CampaignJob,
    SMOKE_BENCHMARKS,
    SUITE_ORDER,
    enumerate_jobs,
    job_config,
    job_trace,
    smoke_jobs,
)
from .report import render_summary, write_campaign_json
from .runner import CampaignResult, JobRecord, run_campaign

__all__ = [
    "CACHE_DIR_ENV", "CORE_ORDER", "CampaignJob", "CampaignResult",
    "JobRecord", "ResultCache", "SMOKE_BENCHMARKS", "SUITE_ORDER",
    "cached_simulate", "config_fingerprint", "default_cache_dir",
    "enumerate_jobs", "job_config", "job_trace", "model_version",
    "payload_to_result", "render_summary", "result_key",
    "result_key_from_fingerprint", "result_to_payload", "run_campaign",
    "smoke_jobs", "trace_fingerprint", "trace_index_key",
    "trace_version", "write_campaign_json",
]
