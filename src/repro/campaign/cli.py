"""``python -m repro.campaign`` — run, report, clean.

Examples::

    # full evaluation grid, sharded over every CPU
    python -m repro.campaign run

    # the CI smoke set (one small benchmark per suite, small core)
    python -m repro.campaign run --smoke --jobs 2

    # one benchmark, two modes, tiny scale (fast sanity check)
    python -m repro.campaign run --suites ml --benchmarks pool0 \
        --modes baseline redsoc --scale 4

    # re-render the summary of a previous campaign
    python -m repro.campaign report --input BENCH_campaign.json

    # drop every cached result
    python -m repro.campaign clean
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from .cache import ResultCache, default_cache_dir
from .jobs import (
    CORE_ORDER,
    MODE_ORDER,
    SUITE_ORDER,
    enumerate_jobs,
    smoke_jobs,
)
from .report import load_campaign_json, render_summary, write_campaign_json
from .runner import run_campaign

DEFAULT_OUTPUT = "BENCH_campaign.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel ReDSOC simulation campaigns with a "
                    "persistent result cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a campaign")
    run.add_argument("--suites", nargs="+", metavar="SUITE",
                     help=f"subset of {list(SUITE_ORDER)}")
    run.add_argument("--benchmarks", nargs="+", metavar="BENCH",
                     help="subset of benchmarks within the suites")
    run.add_argument("--cores", nargs="+", metavar="CORE",
                     help=f"subset of {list(CORE_ORDER)}")
    run.add_argument("--modes", nargs="+", metavar="MODE",
                     help=f"subset of {list(MODE_ORDER)}")
    run.add_argument("--scale", type=int, default=None,
                     help="uniform scale override (default: per-suite "
                          "evaluation scales)")
    run.add_argument("--smoke", action="store_true",
                     help="one small benchmark per suite on the small "
                          "core (the CI smoke set)")
    run.add_argument("--jobs", "-j", type=int,
                     default=os.cpu_count() or 1, metavar="N",
                     help="worker processes (default: cpu count)")
    run.add_argument("--cache-dir", type=Path, default=None,
                     help="cache root (default: $REDSOC_CACHE_DIR or "
                          "./.redsoc-cache)")
    run.add_argument("--force", action="store_true",
                     help="re-simulate even on cache hits")
    run.add_argument("--output", "-o", type=Path,
                     default=Path(DEFAULT_OUTPUT),
                     help=f"result JSON path (default: {DEFAULT_OUTPUT})")
    run.add_argument("--quiet", "-q", action="store_true",
                     help="suppress per-job progress and summary")

    report = sub.add_parser("report",
                            help="summarise an existing campaign JSON")
    report.add_argument("--input", "-i", type=Path,
                        default=Path(DEFAULT_OUTPUT),
                        help=f"campaign JSON (default: {DEFAULT_OUTPUT})")

    clean = sub.add_parser("clean", help="delete the result cache")
    clean.add_argument("--cache-dir", type=Path, default=None,
                       help="cache root (default: $REDSOC_CACHE_DIR or "
                            "./.redsoc-cache)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.smoke:
        jobs = smoke_jobs(modes=args.modes, scale=args.scale)
    else:
        jobs = enumerate_jobs(suites=args.suites,
                              benchmarks=args.benchmarks,
                              cores=args.cores, modes=args.modes,
                              scale=args.scale)
    if not jobs:
        print("no jobs selected", file=sys.stderr)
        return 2

    def progress(record):
        if not args.quiet:
            status = "hit " if record.cache_hit else "sim "
            print(f"[{status}] {record.label:40s} "
                  f"cycles={record.cycles:<8d} ipc={record.ipc:.3f} "
                  f"({record.wall_time_s:.2f}s)")

    result = run_campaign(jobs, workers=max(1, args.jobs),
                          cache_dir=args.cache_dir, force=args.force,
                          progress=progress)
    path = write_campaign_json(result, args.output)
    if not args.quiet:
        print()
        print(render_summary(result.to_payload()))
        print(f"\nwrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if not args.input.is_file():
        print(f"no campaign JSON at {args.input} "
              f"(run `python -m repro.campaign run` first)",
              file=sys.stderr)
        return 2
    print(render_summary(load_campaign_json(args.input)))
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir or default_cache_dir())
    removed = cache.clear()
    print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {"run": _cmd_run, "report": _cmd_report,
               "clean": _cmd_clean}[args.command]
    try:
        return handler(args)
    except ValueError as exc:        # bad suite/bench/core/mode names
        print(f"error: {exc}", file=sys.stderr)
        return 2
