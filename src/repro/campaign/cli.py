"""``python -m repro.campaign`` — run, report, clean, trace, profile.

Examples::

    # full evaluation grid, sharded over every CPU
    python -m repro.campaign run

    # the CI smoke set (one small benchmark per suite, small core)
    python -m repro.campaign run --smoke --jobs 2

    # one benchmark, two modes, tiny scale (fast sanity check)
    python -m repro.campaign run --suites ml --benchmarks pool0 \
        --modes baseline redsoc --scale 4

    # analytic predictions vs exact runs, CI-gated on accuracy
    python -m repro.campaign predict --max-mape 8 --max-abs-err 15

    # re-render the summary of a previous campaign
    python -m repro.campaign report --input BENCH_campaign.json

    # drop every cached result
    python -m repro.campaign clean

    # trace one job: Perfetto JSON + events JSONL + metrics JSONL
    python -m repro.campaign trace ml/pool0@small:redsoc --scale 4

    # profile one job and print the hottest functions
    python -m repro.campaign profile mibench/bitcnt@small:baseline
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import re
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import ENGINES
from repro.core.cpu import CoreSimulator, simulate
from repro.obs import Recorder, write_chrome_trace, write_events_jsonl, \
    write_metrics_jsonl

from .cache import ResultCache, default_cache_dir
from .jobs import (
    CORE_ORDER,
    MODE_ORDER,
    SUITE_ORDER,
    CampaignJob,
    enumerate_jobs,
    job_config,
    job_trace,
    smoke_jobs,
)
from .report import load_campaign_json, render_summary, write_campaign_json
from .runner import job_slug, run_campaign

DEFAULT_OUTPUT = "BENCH_campaign.json"

_JOBSPEC = re.compile(
    r"^(?P<suite>[\w-]+)/(?P<bench>[\w-]+)"
    r"@(?P<core>[\w-]+):(?P<mode>[\w-]+)$")


def parse_jobspec(spec: str,
                  scale: Optional[int] = None) -> CampaignJob:
    """Parse ``suite/bench@core:mode`` (a JobRecord label) into a job.

    The one-job grid expansion reuses :func:`enumerate_jobs`, so
    unknown names fail with the same loud error messages as ``run``.
    """
    match = _JOBSPEC.match(spec)
    if match is None:
        raise ValueError(
            f"bad job spec {spec!r}; expected suite/bench@core:mode "
            f"(e.g. ml/pool0@small:redsoc)")
    jobs = enumerate_jobs(suites=[match["suite"]],
                          benchmarks=[match["bench"]],
                          cores=[match["core"]],
                          modes=[match["mode"]], scale=scale)
    if not jobs:
        raise ValueError(f"job spec {spec!r} matches no benchmark in "
                         f"suite {match['suite']!r}")
    return jobs[0]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel ReDSOC simulation campaigns with a "
                    "persistent result cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a campaign")
    run.add_argument("--suites", nargs="+", metavar="SUITE",
                     help=f"subset of {list(SUITE_ORDER)}")
    run.add_argument("--benchmarks", nargs="+", metavar="BENCH",
                     help="subset of benchmarks within the suites")
    run.add_argument("--cores", nargs="+", metavar="CORE",
                     help=f"subset of {list(CORE_ORDER)}")
    run.add_argument("--modes", nargs="+", metavar="MODE",
                     help=f"subset of {list(MODE_ORDER)}")
    run.add_argument("--scale", type=int, default=None,
                     help="uniform scale override (default: per-suite "
                          "evaluation scales)")
    run.add_argument("--engine", choices=list(ENGINES.names()),
                     default=None,
                     help="pin every job to one simulation backend "
                          "(default: the config default; all engines "
                          "are cycle-identical)")
    run.add_argument("--smoke", action="store_true",
                     help="one small benchmark per suite on the small "
                          "core (the CI smoke set)")
    run.add_argument("--jobs", "-j", type=int,
                     default=os.cpu_count() or 1, metavar="N",
                     help="worker processes (default: cpu count)")
    run.add_argument("--cache-dir", type=Path, default=None,
                     help="cache root (default: $REDSOC_CACHE_DIR or "
                          "./.redsoc-cache)")
    run.add_argument("--force", action="store_true",
                     help="re-simulate even on cache hits")
    run.add_argument("--output", "-o", type=Path,
                     default=Path(DEFAULT_OUTPUT),
                     help=f"result JSON path (default: {DEFAULT_OUTPUT})")
    run.add_argument("--quiet", "-q", action="store_true",
                     help="suppress per-job progress and summary")
    run.add_argument("--log-json", action="store_true",
                     help="structured JSON log lines on stderr (one "
                          "per finished job)")
    run.add_argument("--profile-dir", type=Path, default=None,
                     metavar="DIR",
                     help="cProfile every simulated (non-cached) job "
                          "and dump one .pstats file per job here")

    trace = sub.add_parser(
        "trace",
        help="trace one job: Perfetto trace + events/metrics JSONL")
    trace.add_argument("job", metavar="SUITE/BENCH@CORE:MODE",
                       help="job spec, e.g. ml/pool0@small:redsoc")
    trace.add_argument("--scale", type=int, default=None,
                       help="workload scale override")
    trace.add_argument("--out-dir", type=Path, default=Path("traces"),
                       help="output directory (default: ./traces)")

    profile = sub.add_parser(
        "profile", help="cProfile one job and print hot functions")
    profile.add_argument("job", metavar="SUITE/BENCH@CORE:MODE",
                         help="job spec, e.g. mibench/bitcnt@small:mos")
    profile.add_argument("--scale", type=int, default=None,
                         help="workload scale override")
    profile.add_argument("--top", type=int, default=15, metavar="N",
                         help="functions to print (default: 15)")
    profile.add_argument("--output", "-o", type=Path, default=None,
                         help="also dump raw .pstats here")

    pred = sub.add_parser(
        "predict",
        help="run a grid exactly, predict it analytically, and report "
             "predicted-vs-actual error per job")
    pred.add_argument("--suites", nargs="+", metavar="SUITE",
                      help=f"subset of {list(SUITE_ORDER)}")
    pred.add_argument("--benchmarks", nargs="+", metavar="BENCH",
                      help="subset of benchmarks within the suites")
    pred.add_argument("--cores", nargs="+", metavar="CORE",
                      help=f"subset of {list(CORE_ORDER)}")
    pred.add_argument("--modes", nargs="+", metavar="MODE",
                      help=f"subset of {list(MODE_ORDER)}")
    pred.add_argument("--scale", type=int, default=None,
                      help="uniform scale override")
    pred.add_argument("--jobs", "-j", type=int,
                      default=os.cpu_count() or 1, metavar="N",
                      help="worker processes for the exact runs")
    pred.add_argument("--cache-dir", type=Path, default=None,
                      help="cache root (default: $REDSOC_CACHE_DIR or "
                           "./.redsoc-cache)")
    pred.add_argument("--output", "-o", type=Path,
                      default=Path(DEFAULT_OUTPUT),
                      help=f"result JSON path (default: {DEFAULT_OUTPUT})")
    pred.add_argument("--quiet", "-q", action="store_true",
                      help="suppress per-job progress and summary")
    pred.add_argument("--fit-calibration", type=Path, default=None,
                      metavar="PATH",
                      help="refit the calibration from this matrix and "
                           "save it to PATH before predicting")
    pred.add_argument("--max-mape", type=float, default=None,
                      metavar="PCT",
                      help="fail (exit 1) if full-matrix MAPE exceeds "
                           "this percentage")
    pred.add_argument("--max-abs-err", type=float, default=None,
                      metavar="PCT",
                      help="fail (exit 1) if any job's absolute error "
                           "exceeds this percentage")

    report = sub.add_parser("report",
                            help="summarise an existing campaign JSON")
    report.add_argument("--input", "-i", type=Path,
                        default=Path(DEFAULT_OUTPUT),
                        help=f"campaign JSON (default: {DEFAULT_OUTPUT})")

    clean = sub.add_parser("clean", help="delete the result cache")
    clean.add_argument("--cache-dir", type=Path, default=None,
                       help="cache root (default: $REDSOC_CACHE_DIR or "
                            "./.redsoc-cache)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.smoke:
        jobs = smoke_jobs(modes=args.modes, scale=args.scale,
                          engine=args.engine)
    else:
        jobs = enumerate_jobs(suites=args.suites,
                              benchmarks=args.benchmarks,
                              cores=args.cores, modes=args.modes,
                              scale=args.scale, engine=args.engine)
    if not jobs:
        print("no jobs selected", file=sys.stderr)
        return 2

    def progress(record):
        if not args.quiet:
            status = "hit " if record.cache_hit else "sim "
            print(f"[{status}] {record.label:40s} "
                  f"cycles={record.cycles:<8d} ipc={record.ipc:.3f} "
                  f"({record.wall_time_s:.2f}s)")

    logger = None
    if args.log_json:
        from repro.obs.log import stderr_logger
        logger = stderr_logger(component="campaign")
    result = run_campaign(jobs, workers=max(1, args.jobs),
                          cache_dir=args.cache_dir, force=args.force,
                          progress=progress,
                          profile_dir=args.profile_dir,
                          logger=logger)
    path = write_campaign_json(result, args.output)
    if not args.quiet:
        print()
        print(render_summary(result.to_payload()))
        print(f"\nwrote {path}")
        if args.profile_dir is not None:
            print(f"profiles in {args.profile_dir}/")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .cache import default_cache_dir
    from .predict import attach_predictions, fit_from_records

    jobs = enumerate_jobs(suites=args.suites,
                          benchmarks=args.benchmarks,
                          cores=args.cores, modes=args.modes,
                          scale=args.scale)
    if not jobs:
        print("no jobs selected", file=sys.stderr)
        return 2

    def progress(record):
        if not args.quiet:
            status = "hit " if record.cache_hit else "sim "
            print(f"[{status}] {record.label:40s} "
                  f"cycles={record.cycles:<8d} "
                  f"({record.wall_time_s:.2f}s)")

    cache_dir = args.cache_dir or default_cache_dir()
    result = run_campaign(jobs, workers=max(1, args.jobs),
                          cache_dir=cache_dir, progress=progress)

    calibration = None
    if args.fit_calibration is not None:
        calibration = fit_from_records(result.records, list(jobs),
                                       cache_dir, args.fit_calibration)
        if not args.quiet:
            print(f"\nrefitted calibration -> {args.fit_calibration}")
    attach_predictions(result.records, list(jobs), cache_dir,
                       calibration=calibration)

    path = write_campaign_json(result, args.output)
    summary = result.predict_summary()
    if not args.quiet:
        print()
        print(render_summary(result.to_payload()))
        print(f"\nwrote {path}")
    if summary is None:     # pragma: no cover - jobs is non-empty here
        print("error: no predictions produced", file=sys.stderr)
        return 2
    print(f"predict: {summary['jobs']} jobs, "
          f"MAPE {summary['mape_pct']:.2f}%, "
          f"worst {summary['max_abs_pct']:.2f}% ({summary['worst']})")
    failed = False
    if args.max_mape is not None and summary["mape_pct"] > args.max_mape:
        print(f"FAIL: MAPE {summary['mape_pct']:.2f}% > "
              f"--max-mape {args.max_mape}", file=sys.stderr)
        failed = True
    if args.max_abs_err is not None \
            and summary["max_abs_pct"] > args.max_abs_err:
        print(f"FAIL: worst error {summary['max_abs_pct']:.2f}% > "
              f"--max-abs-err {args.max_abs_err}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    job = parse_jobspec(args.job, scale=args.scale)
    recorder = Recorder()
    sim = CoreSimulator(job_trace(job), job_config(job), obs=recorder)
    result = sim.run()

    out_dir: Path = args.out_dir
    slug = job_slug(job.label)
    trace_path = write_chrome_trace(recorder.events,
                                    out_dir / f"{slug}.trace.json")
    events_path = write_events_jsonl(recorder.events,
                                     out_dir / f"{slug}.events.jsonl")
    metrics_path = write_metrics_jsonl(sim.metrics,
                                       out_dir / f"{slug}.metrics.jsonl")

    print(f"{job.label}: {result.cycles} cycles, "
          f"ipc={result.ipc:.3f}, {len(recorder)} events")
    print(f"  perfetto trace  {trace_path}")
    print(f"  events jsonl    {events_path}")
    print(f"  metrics jsonl   {metrics_path}")
    print("open the trace at https://ui.perfetto.dev or "
          "chrome://tracing")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    job = parse_jobspec(args.job, scale=args.scale)
    trace = job_trace(job)
    config = job_config(job)

    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(trace, config)
    profiler.disable()

    print(f"{job.label}: {result.cycles} cycles, "
          f"ipc={result.ipc:.3f}")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(args.top)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        stats.dump_stats(args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if not args.input.is_file():
        print(f"no campaign JSON at {args.input} "
              f"(run `python -m repro.campaign run` first)",
              file=sys.stderr)
        return 2
    try:
        payload = load_campaign_json(args.input)
        summary = render_summary(payload)
    except (OSError, ValueError, KeyError, TypeError,
            AttributeError) as exc:
        # empty file, torn write, or a document of the wrong shape:
        # one line on stderr, not a traceback
        print(f"error: {args.input} is not a readable campaign JSON "
              f"({type(exc).__name__}: {exc})", file=sys.stderr)
        return 2
    print(summary)
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir or default_cache_dir())
    removed = cache.clear()
    print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {"run": _cmd_run, "predict": _cmd_predict,
               "report": _cmd_report,
               "clean": _cmd_clean, "trace": _cmd_trace,
               "profile": _cmd_profile}[args.command]
    try:
        return handler(args)
    except ValueError as exc:        # bad suite/bench/core/mode names
        print(f"error: {exc}", file=sys.stderr)
        return 2
