"""``campaign predict`` — predicted-vs-actual over a campaign grid.

Runs the exact campaign first (through the shared result cache, so a
warm matrix costs three file reads per job), then answers every job a
second time with the analytic model (:mod:`repro.predict`) and attaches
``predicted_cycles`` / ``predict_error`` / ``predict_latency_us`` to
each :class:`~repro.campaign.runner.JobRecord`.  The summary block the
records roll up into (``CampaignResult.predict_summary``) is the
artefact CI gates on: full-matrix MAPE and worst per-benchmark error.

``fit_from_records`` refits the calibration from the same matrix —
``campaign predict --fit-calibration`` is how ``calibration.json`` is
regenerated after a model or simulator change.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.predict import (
    Calibration,
    default_calibration,
    feature_vector,
    fit_calibration,
    predict,
)
from repro.predict.chains import TraceFeatures
from repro.predict.service import cached_features

from .cache import ResultCache
from .jobs import CampaignJob, job_config
from .runner import JobRecord


def _features_by_workload(jobs: Iterable[CampaignJob],
                          cache_dir: Path,
                          ) -> Dict[Tuple[str, str, str], TraceFeatures]:
    """One feature extraction per (suite, bench, core) — modes share
    it, and the extraction goes through the serve-side feature cache,
    so a repeated ``campaign predict`` never re-walks a trace."""
    cache = ResultCache(Path(cache_dir))
    features: Dict[Tuple[str, str, str], TraceFeatures] = {}
    for job in jobs:
        key = (job.suite, job.bench, job.core)
        if key in features:
            continue
        hit = cached_features(
            {"suite": job.suite, "bench": job.bench, "scale": job.scale},
            job_config(job), cache)
        features[key] = hit["features"]
    return features


def attach_predictions(records: List[JobRecord],
                       jobs: List[CampaignJob],
                       cache_dir: Path, *,
                       calibration: Optional[Calibration] = None,
                       ) -> None:
    """Predict every job and fill the prediction fields in place.

    *records* and *jobs* are parallel lists (``run_campaign`` keeps
    submission order).  The per-record ``predict_latency_us`` covers
    only the prediction itself — features are extracted once per
    (suite, bench, core) beforehand, mirroring the serve fast path
    where extraction is cached.
    """
    calibration = calibration or default_calibration()
    features = _features_by_workload(jobs, cache_dir)
    for record, job in zip(records, jobs):
        feats = features[(job.suite, job.bench, job.core)]
        config = job_config(job)
        start = time.perf_counter()
        prediction = predict(feats, config, job.mode,
                             calibration=calibration)
        latency = time.perf_counter() - start
        record.predicted_cycles = round(prediction.cycles, 3)
        record.predict_error = round(
            (prediction.cycles - record.cycles) / record.cycles * 100, 3)
        record.predict_latency_us = int(latency * 1e6)


def fit_from_records(records: List[JobRecord],
                     jobs: List[CampaignJob],
                     cache_dir: Path,
                     out_path: Path) -> Calibration:
    """Refit the calibration from an exact matrix and save it."""
    features = _features_by_workload(jobs, cache_dir)
    samples = []
    for record, job in zip(records, jobs):
        feats = features[(job.suite, job.bench, job.core)]
        config = job_config(job)
        samples.append({
            "bench": f"{job.suite}/{job.bench}",
            "core": job.core,
            "mode": job.mode,
            "features": feature_vector(feats, config, job.mode),
            "actual": record.cycles,
        })
    calibration = fit_calibration(samples)
    calibration.meta["fitted_from"] = (
        f"campaign predict matrix ({len(records)} jobs)")
    calibration.save(out_path)
    return calibration
