"""Campaign output: machine-readable JSON + human summary table."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from repro.analysis.report import format_table, percent

from .runner import CampaignResult


def write_campaign_json(result: CampaignResult, path: Path) -> Path:
    """Write ``BENCH_campaign.json`` and return its path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_payload(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def render_summary(payload: Dict[str, Any]) -> str:
    """Human summary of a campaign payload (fresh or loaded from disk).

    Handles every historical schema: prediction fields (schema 4) are
    rendered only when at least one record carries them, so documents
    written by older versions — or plain ``run`` campaigns — format
    exactly as before.
    """
    results = payload["results"]
    with_predict = any(rec.get("predict_error") is not None
                       for rec in results)
    rows: List[List[Any]] = []
    for rec in results:
        speedup = rec.get("speedup")
        rate = rec.get("sim_cycles_per_sec")
        row = [
            rec["suite"], rec["bench"], rec["core"], rec["mode"],
            rec["cycles"], f"{rec['ipc']:.3f}",
            percent(speedup) if speedup is not None else "-",
            "hit" if rec["cache_hit"] else "miss",
            f"{rate:,.0f}" if rate is not None else "-",
            f"{rec['wall_time_s']:.2f}s",
        ]
        if with_predict:
            err = rec.get("predict_error")
            row.append(f"{err:+.1f}%" if err is not None else "-")
        rows.append(row)
    headers = ["suite", "bench", "core", "mode", "cycles", "IPC",
               "speedup", "cache", "sim cyc/s", "time"]
    if with_predict:
        headers.append("pred err")
    table = format_table("Campaign results", headers, rows)
    cache = payload["cache"]
    footer = (f"{payload['jobs']} jobs, {payload['workers']} worker(s), "
              f"{payload['wall_time_s']:.2f}s wall; cache "
              f"{cache['hits']} hit / {cache['misses']} miss "
              f"({percent(cache['hit_rate'])})")
    predict = payload.get("predict")
    if predict:
        footer += (f"\npredict: MAPE {predict['mape_pct']:.2f}%, "
                   f"worst {predict['max_abs_pct']:.2f}% "
                   f"({predict['worst']})")
    return f"{table}\n{footer}"


def load_campaign_json(path: Path) -> Dict[str, Any]:
    """Read a ``BENCH_campaign.json`` document."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
