"""Serial / process-pool campaign execution.

Jobs are independent, deterministic, and read/write a shared on-disk
cache, so sharding is embarrassingly parallel: each worker process
materialises its own traces (memoised per process), probes the cache,
and simulates only on a miss.  Cache writes are atomic, and identical
keys always carry identical content, so racing workers are harmless.

``run_campaign`` keeps the results in submission (evaluation) order
regardless of worker scheduling, and joins every non-baseline record
with its ``(suite, bench, core)`` baseline to compute the paper's
speedup metric.

Every job also carries telemetry: which worker process ran it, and a
span breakdown (``cache_probe`` / ``trace_gen`` / ``simulate``) of
where its wall time went — written into ``BENCH_campaign.json`` so a
slow campaign can be diagnosed from the artefact alone.  Passing
``profile_dir`` additionally wraps each simulated job in
:mod:`cProfile` and drops one ``.pstats`` file per job.
"""

from __future__ import annotations

import cProfile
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import RecycleMode

from .cache import (
    ResultCache,
    model_version,
    payload_to_result,
    result_key_from_fingerprint,
    result_to_payload,
    trace_fingerprint,
    trace_index_key,
)
from repro.core.cpu import simulate

from .jobs import CampaignJob, job_config, job_trace


@dataclass
class JobRecord:
    """Outcome of one campaign job."""

    suite: str
    bench: str
    core: str
    mode: str
    key: str
    cycles: int
    committed: int
    ipc: float
    cache_hit: bool
    wall_time_s: float
    speedup: Optional[float] = None
    worker: str = ""
    #: simulation backend the job was pinned to (``None`` = config
    #: default); engines are cycle-identical, so this is telemetry,
    #: not identity — labels and reference keys stay engine-free
    engine: Optional[str] = None
    spans: Dict[str, float] = field(default_factory=dict)
    #: simulator throughput for this job (simulated cycles per second
    #: of the ``simulate`` span); ``None`` on cache hits, which never
    #: ran the simulator
    sim_cycles_per_sec: Optional[float] = None
    #: analytic-model prediction for this job (``campaign predict``
    #: only; plain runs leave all three unset)
    predicted_cycles: Optional[float] = None
    #: signed relative error of the prediction, in percent
    #: ((predicted - actual) / actual * 100)
    predict_error: Optional[float] = None
    #: wall time of the prediction itself (features + dot product)
    predict_latency_us: Optional[int] = None

    @property
    def label(self) -> str:
        return f"{self.suite}/{self.bench}@{self.core}:{self.mode}"


def job_slug(label: str) -> str:
    """Filesystem-safe name for a job label (profiles, traces)."""
    return label.replace("/", "_").replace("@", "_").replace(":", "_")


@dataclass
class CampaignResult:
    """All records of one campaign invocation plus cache accounting."""

    records: List[JobRecord] = field(default_factory=list)
    workers: int = 1
    wall_time_s: float = 0.0

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def misses(self) -> int:
        return len(self.records) - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.records) if self.records else 0.0

    def span_totals(self) -> Dict[str, float]:
        """Aggregate per-span seconds across every record."""
        totals: Dict[str, float] = {}
        for rec in self.records:
            for name, seconds in rec.spans.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return {name: round(seconds, 4)
                for name, seconds in sorted(totals.items())}

    def predict_summary(self) -> Optional[Dict[str, Any]]:
        """Aggregate predicted-vs-actual accuracy, when present.

        ``None`` unless at least one record carries ``predict_error``
        (i.e. the campaign ran through ``campaign predict``), so plain
        runs serialise without a ``predict`` block at all.
        """
        errs = [(abs(r.predict_error), r) for r in self.records
                if r.predict_error is not None]
        if not errs:
            return None
        worst_err, worst = max(errs, key=lambda pair: pair[0])
        return {
            "jobs": len(errs),
            "mape_pct": round(sum(e for e, _ in errs) / len(errs), 3),
            "max_abs_pct": round(worst_err, 3),
            "worst": worst.label,
        }

    def to_payload(self) -> Dict[str, Any]:
        """JSON document written to ``BENCH_campaign.json``."""
        predict = self.predict_summary()
        extra = {"predict": predict} if predict is not None else {}
        return {
            "schema": 4,
            **extra,
            "model_version": model_version(),
            "workers": self.workers,
            "jobs": len(self.records),
            "wall_time_s": round(self.wall_time_s, 3),
            "cache": {"hits": self.hits, "misses": self.misses,
                      "hit_rate": round(self.hit_rate, 4)},
            "telemetry": {
                "span_totals_s": self.span_totals(),
                "workers_used": sorted({r.worker for r in self.records
                                        if r.worker}),
            },
            "results": [asdict(r) for r in self.records],
        }


def _record_for(job: CampaignJob, key: str, result, cache_hit: bool,
                spans: Dict[str, float], start: float) -> JobRecord:
    """Assemble one :class:`JobRecord` from an executed job's pieces."""
    sim_seconds = spans.get("simulate", 0.0)
    return JobRecord(
        suite=job.suite, bench=job.bench, core=job.core, mode=job.mode,
        key=key, engine=job.engine,
        cycles=result.cycles, committed=result.stats.committed,
        ipc=result.ipc, cache_hit=cache_hit,
        wall_time_s=time.perf_counter() - start,
        worker=f"pid-{os.getpid()}",
        spans={name: round(seconds, 6)
               for name, seconds in spans.items()},
        sim_cycles_per_sec=(round(result.cycles / sim_seconds, 1)
                            if sim_seconds > 0 else None))


def _simulate_one(job: CampaignJob, trace, config,
                  profile_dir: Optional[str]):
    """Simulate one cache-missed job, honouring the profile hook."""
    if profile_dir is not None:
        profiler = cProfile.Profile()
        profiler.enable()
        result = simulate(trace, config)
        profiler.disable()
        out_dir = Path(profile_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(out_dir / f"{job_slug(job.label)}.pstats")
        return result
    return simulate(trace, config)


def _execute_job(job: CampaignJob, cache_dir: str, force: bool,
                 profile_dir: Optional[str] = None) -> JobRecord:
    """Run one job against the shared cache (worker entry point)."""
    return _execute_jobs([job], cache_dir, force, profile_dir)[0]


def _execute_jobs(jobs: Sequence[CampaignJob], cache_dir: str,
                  force: bool,
                  profile_dir: Optional[str] = None) -> List[JobRecord]:
    """Run a chunk of jobs against the shared cache (worker entry).

    Fast path per job: the trace-fingerprint index resolves the result
    key without regenerating the trace, so a fully-warm job is three
    small file reads.  Slow path: generate the trace, record its
    fingerprint in the index, probe again, and simulate only on a true
    miss.

    Cache misses whose engine registers a **batch** entry point
    (``ENGINES.batch``) are replayed together through one
    ``simulate_batch`` call — lanes share the columnar decode pass and
    per-job setup — instead of one ``simulate`` call each; per-lane
    replay times keep each record's ``simulate`` span meaningful (the
    shared batch overhead is split evenly across the lanes).

    Each stage is timed into the record's ``spans`` dict; with
    *profile_dir* set, a cache miss runs unbatched under
    :mod:`cProfile` and dumps ``<label>.pstats`` there.
    """
    from repro.core.engine import ENGINES

    cache = ResultCache(Path(cache_dir))
    records: List[Optional[JobRecord]] = [None] * len(jobs)
    #: cache misses awaiting simulation: (index, job, config, trace,
    #: result key, spans, per-job start time)
    pending: List[tuple] = []

    for idx, job in enumerate(jobs):
        start = time.perf_counter()
        spans: Dict[str, float] = {}
        config = job_config(job)
        tkey = trace_index_key(job.suite, job.bench, job.scale)
        result = None
        cache_hit = False
        key = ""

        probe_start = time.perf_counter()
        if not force:
            fingerprint = cache.get_trace_fingerprint(tkey)
            if fingerprint is not None:
                key = result_key_from_fingerprint(fingerprint, config)
                payload = cache.get(key)
                if payload is not None:
                    result = payload_to_result(payload, config)
                    cache_hit = True
        spans["cache_probe"] = time.perf_counter() - probe_start

        if result is None:
            gen_start = time.perf_counter()
            trace = job_trace(job)
            fingerprint = trace_fingerprint(trace)
            spans["trace_gen"] = time.perf_counter() - gen_start
            cache.put_trace_fingerprint(tkey, fingerprint)
            key = result_key_from_fingerprint(fingerprint, config)
            payload = None if force else cache.get(key)
            if payload is not None:
                result = payload_to_result(payload, config)
                cache_hit = True
            else:
                pending.append((idx, job, config, trace, key, spans,
                                start))
                continue
        records[idx] = _record_for(job, key, result, cache_hit, spans,
                                   start)

    # group the misses by engine; batch-capable engines replay their
    # whole group in one columnar pass
    by_engine: Dict[Optional[str], List[tuple]] = {}
    for item in pending:
        by_engine.setdefault(item[2].engine, []).append(item)
    for engine, items in by_engine.items():
        batch_fn = None
        if profile_dir is None and len(items) > 1 \
                and engine in ENGINES:
            batch_fn = ENGINES.batch(engine)
        if batch_fn is not None:
            lane_times: List[float] = []
            batch_start = time.perf_counter()
            results = batch_fn(
                [(trace, config) for _, _, config, trace, _, _, _
                 in items],
                lane_times=lane_times)
            batch_wall = time.perf_counter() - batch_start
            shared = max(0.0, batch_wall - sum(lane_times)) / len(items)
            for (idx, job, config, trace, key, spans, start), result, \
                    lane_s in zip(items, results, lane_times):
                spans["simulate"] = lane_s + shared
                cache.put(key, result_to_payload(result))
                records[idx] = _record_for(job, key, result, False,
                                           spans, start)
        else:
            for idx, job, config, trace, key, spans, start in items:
                sim_start = time.perf_counter()
                result = _simulate_one(job, trace, config, profile_dir)
                spans["simulate"] = time.perf_counter() - sim_start
                cache.put(key, result_to_payload(result))
                records[idx] = _record_for(job, key, result, False,
                                           spans, start)
    return records  # type: ignore[return-value]


def _attach_speedups(records: Sequence[JobRecord]) -> None:
    """Fill ``speedup`` on every record with a same-shape baseline."""
    baselines: Dict[Tuple[str, str, str], int] = {}
    for rec in records:
        if rec.mode == RecycleMode.BASELINE.value:
            baselines[(rec.suite, rec.bench, rec.core)] = rec.cycles
    for rec in records:
        base = baselines.get((rec.suite, rec.bench, rec.core))
        if base is not None and rec.mode != RecycleMode.BASELINE.value:
            rec.speedup = base / rec.cycles - 1.0


def run_campaign(jobs: Sequence[CampaignJob], *,
                 workers: int = 1,
                 cache_dir: Optional[Path] = None,
                 force: bool = False,
                 progress=None,
                 profile_dir: Optional[Path] = None,
                 logger=None) -> CampaignResult:
    """Execute *jobs*, sharded over *workers* processes.

    ``workers <= 1`` runs everything in-process (useful under pytest
    and for debugging); results are identical either way because the
    timing model is deterministic.  *progress* is an optional callable
    receiving each finished :class:`JobRecord`.  *profile_dir* turns
    on the per-job cProfile hook for cache misses.  *logger* (a
    :class:`repro.obs.log.JsonLogger`) emits one structured line per
    finished job.
    """
    cache_root = Path(cache_dir) if cache_dir is not None \
        else ResultCache().root
    profile_arg = str(profile_dir) if profile_dir is not None else None
    start = time.perf_counter()
    records: List[JobRecord] = []

    def finish(record: JobRecord) -> None:
        records.append(record)
        if logger is not None:
            logger.info("campaign.job", label=record.label,
                        cycles=record.cycles,
                        cache_hit=record.cache_hit,
                        wall_time_s=round(record.wall_time_s, 4),
                        worker=record.worker)
        if progress is not None:
            progress(record)

    def _batchable() -> bool:
        """Any job pinned to an engine with a batch entry point?"""
        from repro.core.engine import ENGINES
        engines = {job_config(job).engine for job in jobs}
        return any(name in ENGINES and ENGINES.batch(name) is not None
                   for name in engines)

    if workers <= 1 or len(jobs) <= 1:
        workers = 1
        for record in _execute_jobs(list(jobs), str(cache_root), force,
                                    profile_arg):
            finish(record)
    elif profile_arg is None and _batchable():
        # batch-capable engines want whole chunks per worker so lanes
        # share one columnar pass; contiguous slices keep report order
        size = -(-len(jobs) // workers)
        chunks = [list(jobs[i:i + size])
                  for i in range(0, len(jobs), size)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_jobs, chunk,
                                   str(cache_root), force, profile_arg)
                       for chunk in chunks]
            for future in futures:
                for record in future.result():
                    finish(record)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_job, job, str(cache_root),
                                   force, profile_arg)
                       for job in jobs]
            # collect in submission order so reports stay stable
            for future in futures:
                finish(future.result())

    _attach_speedups(records)
    if logger is not None:
        logger.info("campaign.done", jobs=len(records),
                    workers=workers,
                    wall_time_s=round(time.perf_counter() - start, 3))
    return CampaignResult(records=records, workers=workers,
                          wall_time_s=time.perf_counter() - start)
